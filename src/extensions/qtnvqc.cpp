#include "extensions/qtnvqc.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "qml/optimizer.hpp"
#include "sim/gradients.hpp"
#include "sim/observable.hpp"

namespace elv::ext {

QtnVqc::QtnVqc(int in_dim, int out_dim, const QtnVqcConfig &config)
    : in_dim_(in_dim), hidden_(config.hidden), out_dim_(out_dim),
      config_(config)
{
    ELV_REQUIRE(in_dim >= 1 && out_dim >= 1 && config.hidden >= 1,
                "bad QTN-VQC shape");
    elv::Rng rng(config.seed ^ 0x71746eULL);
    const double scale1 = 1.0 / std::sqrt(static_cast<double>(in_dim));
    const double scale2 =
        1.0 / std::sqrt(static_cast<double>(config.hidden));
    w1_.resize(static_cast<std::size_t>(hidden_ * in_dim_));
    for (auto &w : w1_)
        w = rng.normal(0.0, scale1);
    b1_.assign(static_cast<std::size_t>(hidden_), 0.0);
    w2_.resize(static_cast<std::size_t>(out_dim_ * hidden_));
    for (auto &w : w2_)
        w = rng.normal(0.0, scale2);
    b2_.assign(static_cast<std::size_t>(out_dim_), 0.0);
}

std::vector<double>
QtnVqc::transform(const std::vector<double> &x) const
{
    ELV_REQUIRE(static_cast<int>(x.size()) == in_dim_,
                "input dimension mismatch");
    std::vector<double> h(static_cast<std::size_t>(hidden_));
    for (int j = 0; j < hidden_; ++j) {
        double acc = b1_[static_cast<std::size_t>(j)];
        for (int i = 0; i < in_dim_; ++i)
            acc += w1_[static_cast<std::size_t>(j * in_dim_ + i)] *
                   x[static_cast<std::size_t>(i)];
        h[static_cast<std::size_t>(j)] = std::tanh(acc);
    }
    std::vector<double> y(static_cast<std::size_t>(out_dim_));
    for (int o = 0; o < out_dim_; ++o) {
        double acc = b2_[static_cast<std::size_t>(o)];
        for (int j = 0; j < hidden_; ++j)
            acc += w2_[static_cast<std::size_t>(o * hidden_ + j)] *
                   h[static_cast<std::size_t>(j)];
        y[static_cast<std::size_t>(o)] = acc;
    }
    return y;
}

std::vector<double>
QtnVqc::train_joint(const circ::Circuit &circuit, const qml::Dataset &data,
                    std::uint64_t *executions)
{
    data.check();
    ELV_REQUIRE(data.dim() == in_dim_, "dataset dimension mismatch");
    ELV_REQUIRE(circuit.num_data_features() <= out_dim_,
                "circuit reads more features than the frontend emits");

    std::vector<int> kept;
    const circ::Circuit local = circuit.compacted(kept);
    const auto embed_ops = local.embedding_op_indices();
    for (std::size_t idx : embed_ops)
        ELV_REQUIRE(local.ops()[idx].data_index2 < 0,
                    "QTN-VQC supports single-feature embeddings only");

    elv::Rng rng(config_.seed ^ 0x6a6f696eULL);

    // Flat trainable vector: [circuit params | w1 | b1 | w2 | b2].
    const std::size_t np = static_cast<std::size_t>(local.num_params());
    std::vector<double> theta(np);
    for (auto &p : theta)
        p = rng.uniform(-M_PI, M_PI);
    std::vector<double> flat = theta;
    flat.insert(flat.end(), w1_.begin(), w1_.end());
    flat.insert(flat.end(), b1_.begin(), b1_.end());
    flat.insert(flat.end(), w2_.begin(), w2_.end());
    flat.insert(flat.end(), b2_.begin(), b2_.end());

    auto unpack = [&](const std::vector<double> &v) {
        std::size_t off = np;
        std::copy(v.begin() + static_cast<std::ptrdiff_t>(off),
                  v.begin() + static_cast<std::ptrdiff_t>(off +
                                                          w1_.size()),
                  w1_.begin());
        off += w1_.size();
        std::copy(v.begin() + static_cast<std::ptrdiff_t>(off),
                  v.begin() + static_cast<std::ptrdiff_t>(off +
                                                          b1_.size()),
                  b1_.begin());
        off += b1_.size();
        std::copy(v.begin() + static_cast<std::ptrdiff_t>(off),
                  v.begin() + static_cast<std::ptrdiff_t>(off +
                                                          w2_.size()),
                  w2_.begin());
        off += w2_.size();
        std::copy(v.begin() + static_cast<std::ptrdiff_t>(off),
                  v.begin() + static_cast<std::ptrdiff_t>(off +
                                                          b2_.size()),
                  b2_.begin());
    };
    unpack(flat);

    qml::Adam optimizer(flat.size(), config_.learning_rate);
    const auto projectors =
        sim::class_projectors(local.measured(), data.num_classes);

    std::vector<std::size_t> order(data.samples.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::uint64_t exec_count = 0;

    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
        rng.shuffle(order);
        std::size_t cursor = 0;
        int batches = 0;
        while (cursor < order.size()) {
            const std::size_t batch_end = std::min(
                order.size(),
                cursor + static_cast<std::size_t>(config_.batch_size));
            std::vector<double> grad(flat.size(), 0.0);
            const double inv_batch =
                1.0 / static_cast<double>(batch_end - cursor);

            for (std::size_t bi = cursor; bi < batch_end; ++bi) {
                const std::size_t idx = order[bi];
                const auto &x = data.samples[idx];
                const int label = data.labels[idx];

                // Classical forward (keep hidden activations for
                // backprop).
                std::vector<double> h(static_cast<std::size_t>(hidden_));
                for (int j = 0; j < hidden_; ++j) {
                    double acc = b1_[static_cast<std::size_t>(j)];
                    for (int i = 0; i < in_dim_; ++i)
                        acc += w1_[static_cast<std::size_t>(
                                   j * in_dim_ + i)] *
                               x[static_cast<std::size_t>(i)];
                    h[static_cast<std::size_t>(j)] = std::tanh(acc);
                }
                std::vector<double> y(static_cast<std::size_t>(out_dim_));
                for (int o = 0; o < out_dim_; ++o) {
                    double acc = b2_[static_cast<std::size_t>(o)];
                    for (int j = 0; j < hidden_; ++j)
                        acc += w2_[static_cast<std::size_t>(
                                   o * hidden_ + j)] *
                               h[static_cast<std::size_t>(j)];
                    y[static_cast<std::size_t>(o)] = acc;
                }

                // Quantum forward + gradients (params and embeddings).
                const std::vector<double> params(
                    flat.begin(),
                    flat.begin() + static_cast<std::ptrdiff_t>(np));
                const std::vector<sim::DiagonalObservable> obs = {
                    projectors[static_cast<std::size_t>(label)]};
                const auto g = sim::adjoint_gradient(local, params, y,
                                                     obs, true);
                exec_count += g.circuit_executions;

                const double p_y = std::max(g.values[0], 1e-10);
                const double coeff = -inv_batch / p_y;

                for (std::size_t pi = 0; pi < np; ++pi)
                    grad[pi] += coeff * g.jacobian[0][pi];

                // dL/dy via the embedding Jacobian.
                std::vector<double> dy(static_cast<std::size_t>(out_dim_),
                                       0.0);
                for (std::size_t e = 0; e < embed_ops.size(); ++e) {
                    const int feature =
                        local.ops()[embed_ops[e]].data_index;
                    dy[static_cast<std::size_t>(feature)] +=
                        coeff * g.embedding_jacobian[0][e];
                }

                // Backprop the two-layer frontend.
                std::size_t off = np;
                // w1 grads need dL/dh first.
                std::vector<double> dh(static_cast<std::size_t>(hidden_),
                                       0.0);
                for (int o = 0; o < out_dim_; ++o)
                    for (int j = 0; j < hidden_; ++j)
                        dh[static_cast<std::size_t>(j)] +=
                            dy[static_cast<std::size_t>(o)] *
                            w2_[static_cast<std::size_t>(o * hidden_ +
                                                         j)];
                for (int j = 0; j < hidden_; ++j) {
                    const double dpre =
                        dh[static_cast<std::size_t>(j)] *
                        (1.0 - h[static_cast<std::size_t>(j)] *
                                   h[static_cast<std::size_t>(j)]);
                    for (int i = 0; i < in_dim_; ++i)
                        grad[off + static_cast<std::size_t>(
                                       j * in_dim_ + i)] +=
                            dpre * x[static_cast<std::size_t>(i)];
                }
                off += w1_.size();
                for (int j = 0; j < hidden_; ++j)
                    grad[off + static_cast<std::size_t>(j)] +=
                        dh[static_cast<std::size_t>(j)] *
                        (1.0 - h[static_cast<std::size_t>(j)] *
                                   h[static_cast<std::size_t>(j)]);
                off += b1_.size();
                for (int o = 0; o < out_dim_; ++o)
                    for (int j = 0; j < hidden_; ++j)
                        grad[off + static_cast<std::size_t>(
                                       o * hidden_ + j)] +=
                            dy[static_cast<std::size_t>(o)] *
                            h[static_cast<std::size_t>(j)];
                off += w2_.size();
                for (int o = 0; o < out_dim_; ++o)
                    grad[off + static_cast<std::size_t>(o)] +=
                        dy[static_cast<std::size_t>(o)];
            }

            optimizer.step(flat, grad);
            unpack(flat);
            cursor = batch_end;
            ++batches;
            if (config_.max_batches_per_epoch > 0 &&
                batches >= config_.max_batches_per_epoch)
                break;
        }
    }

    if (executions)
        *executions = exec_count;
    return {flat.begin(), flat.begin() + static_cast<std::ptrdiff_t>(np)};
}

qml::EvalResult
QtnVqc::evaluate(const circ::Circuit &circuit,
                 const std::vector<double> &params,
                 const qml::Dataset &data,
                 const qml::DistributionFn &dist_fn) const
{
    qml::Dataset transformed;
    transformed.num_classes = data.num_classes;
    transformed.labels = data.labels;
    transformed.samples.reserve(data.samples.size());
    for (const auto &x : data.samples)
        transformed.samples.push_back(transform(x));
    return qml::evaluate(circuit, params, transformed, dist_fn);
}

} // namespace elv::ext
