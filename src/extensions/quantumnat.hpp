/**
 * @file
 * QuantumNAT companion framework (Wang et al., DAC 2022) in the
 * simplified form the paper composes with Elivagar and QuantumNAS
 * (Sec. 9.5 / Fig. 11a): post-measurement *normalization* of class
 * scores calibrated against the noisy backend.
 *
 * Calibration runs the trained circuit on a training subset through
 * both the noiseless and the noisy distribution providers and records
 * per-class mean/std of the class probabilities. At inference, noisy
 * class probabilities are z-scored with the noisy statistics and
 * re-centred on the noiseless means — undoing the systematic bias that
 * device noise puts on the measurement statistics (the normalization +
 * error-mitigation components of QuantumNAT; the original's
 * noise-injection training loop is approximated by calibrating against
 * the same noisy backend used for inference).
 */
#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "qml/classifier.hpp"
#include "qml/dataset.hpp"

namespace elv::ext {

/** Calibrated post-measurement normalization. */
class QuantumNat
{
  public:
    /**
     * Calibrate on (a subset of) `data`: estimates class-probability
     * statistics under both providers for the trained circuit.
     */
    void calibrate(const circ::Circuit &circuit,
                   const std::vector<double> &params,
                   const qml::Dataset &data,
                   const qml::DistributionFn &noisy_fn,
                   const qml::DistributionFn &ideal_fn,
                   int max_samples = 64);

    /** True once calibrate() has run. */
    bool is_calibrated() const { return !noisy_mean_.empty(); }

    /**
     * Normalized class scores for one noisy outcome distribution
     * (argmax of these is the prediction).
     */
    std::vector<double> normalize(
        const std::vector<double> &noisy_class_probs) const;

    /** Evaluate accuracy with normalization applied. */
    qml::EvalResult evaluate(const circ::Circuit &circuit,
                             const std::vector<double> &params,
                             const qml::Dataset &data,
                             const qml::DistributionFn &noisy_fn) const;

  private:
    std::vector<double> noisy_mean_, noisy_std_;
    std::vector<double> ideal_mean_, ideal_std_;
};

} // namespace elv::ext
