/**
 * @file
 * QTN-VQC companion framework (Qi et al.) in the form the paper
 * composes with Elivagar and QuantumNAS (Sec. 9.5 / Fig. 11b): a
 * *trainable classical preprocessing network* in front of the quantum
 * circuit, trained jointly with the circuit parameters.
 *
 * The original uses a tensor-train network; this reproduction uses a
 * low-rank two-layer frontend y = W2 tanh(W1 x + b1) + b2 (a rank-
 * factorized linear map with one nonlinearity — the same role and
 * parameter-efficiency story; see DESIGN.md "Substitutions"). Joint
 * training backpropagates through the circuit's data-embedding angles
 * using the adjoint engine's embedding Jacobian.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "qml/classifier.hpp"
#include "qml/dataset.hpp"

namespace elv::ext {

/** Joint-training hyperparameters. */
struct QtnVqcConfig
{
    int hidden = 8;
    int epochs = 30;
    int batch_size = 32;
    double learning_rate = 0.01;
    std::uint64_t seed = 0;
    /** Cap on batches per epoch (0 = all). */
    int max_batches_per_epoch = 0;
};

/** Trainable classical frontend + circuit parameters. */
class QtnVqc
{
  public:
    /**
     * @param in_dim raw feature dimensionality
     * @param out_dim features fed to the circuit (its num_data_features)
     */
    QtnVqc(int in_dim, int out_dim, const QtnVqcConfig &config);

    /** Classical forward pass. */
    std::vector<double> transform(const std::vector<double> &x) const;

    /**
     * Jointly train frontend weights and circuit parameters on `data`.
     * The circuit must use only single-feature rotation embeddings.
     * Returns the trained circuit parameters (frontend weights are
     * stored inside). `executions` (optional) receives the circuit
     * execution count.
     */
    std::vector<double> train_joint(const circ::Circuit &circuit,
                                    const qml::Dataset &data,
                                    std::uint64_t *executions = nullptr);

    /** Evaluate with the frontend applied, via any backend. */
    qml::EvalResult evaluate(const circ::Circuit &circuit,
                             const std::vector<double> &params,
                             const qml::Dataset &data,
                             const qml::DistributionFn &dist_fn) const;

  private:
    int in_dim_, hidden_, out_dim_;
    QtnVqcConfig config_;
    /** w1_[h][i], b1_[h], w2_[o][h], b2_[o]. */
    std::vector<double> w1_, b1_, w2_, b2_;
};

} // namespace elv::ext
