#include "extensions/quantumnat.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace elv::ext {

void
QuantumNat::calibrate(const circ::Circuit &circuit,
                      const std::vector<double> &params,
                      const qml::Dataset &data,
                      const qml::DistributionFn &noisy_fn,
                      const qml::DistributionFn &ideal_fn,
                      int max_samples)
{
    data.check();
    const std::size_t n = std::min(data.samples.size(),
                                   static_cast<std::size_t>(max_samples));
    ELV_REQUIRE(n >= 2, "calibration needs at least two samples");
    const std::size_t k = static_cast<std::size_t>(data.num_classes);

    std::vector<std::vector<double>> noisy_probs, ideal_probs;
    for (std::size_t i = 0; i < n; ++i) {
        noisy_probs.push_back(qml::class_probabilities_from(
            noisy_fn(circuit, params, data.samples[i]),
            data.num_classes));
        ideal_probs.push_back(qml::class_probabilities_from(
            ideal_fn(circuit, params, data.samples[i]),
            data.num_classes));
    }

    auto stats = [n, k](const std::vector<std::vector<double>> &probs,
                        std::vector<double> &mean,
                        std::vector<double> &stddev) {
        mean.assign(k, 0.0);
        stddev.assign(k, 0.0);
        for (const auto &p : probs)
            for (std::size_t c = 0; c < k; ++c)
                mean[c] += p[c];
        for (auto &m : mean)
            m /= static_cast<double>(n);
        for (const auto &p : probs)
            for (std::size_t c = 0; c < k; ++c)
                stddev[c] += (p[c] - mean[c]) * (p[c] - mean[c]);
        for (auto &s : stddev)
            s = std::sqrt(s / static_cast<double>(n - 1));
    };
    stats(noisy_probs, noisy_mean_, noisy_std_);
    stats(ideal_probs, ideal_mean_, ideal_std_);
}

std::vector<double>
QuantumNat::normalize(const std::vector<double> &noisy_class_probs) const
{
    ELV_REQUIRE(is_calibrated(), "QuantumNat::calibrate has not run");
    ELV_REQUIRE(noisy_class_probs.size() == noisy_mean_.size(),
                "class count mismatch");
    std::vector<double> scores(noisy_class_probs.size());
    for (std::size_t c = 0; c < scores.size(); ++c) {
        const double sigma = std::max(noisy_std_[c], 1e-6);
        const double z = (noisy_class_probs[c] - noisy_mean_[c]) / sigma;
        // Re-embed into the noiseless statistics.
        scores[c] = ideal_mean_[c] + z * std::max(ideal_std_[c], 1e-6);
    }
    return scores;
}

qml::EvalResult
QuantumNat::evaluate(const circ::Circuit &circuit,
                     const std::vector<double> &params,
                     const qml::Dataset &data,
                     const qml::DistributionFn &noisy_fn) const
{
    ELV_REQUIRE(!data.samples.empty(), "empty evaluation set");
    qml::EvalResult result;
    int correct = 0;
    for (std::size_t i = 0; i < data.samples.size(); ++i) {
        const auto probs = qml::class_probabilities_from(
            noisy_fn(circuit, params, data.samples[i]),
            data.num_classes);
        const auto scores = normalize(probs);
        result.loss += qml::cross_entropy(probs, data.labels[i]);
        if (qml::predict_class(scores) == data.labels[i])
            ++correct;
    }
    result.loss /= static_cast<double>(data.samples.size());
    result.accuracy = static_cast<double>(correct) /
                      static_cast<double>(data.samples.size());
    return result;
}

} // namespace elv::ext
