/**
 * @file
 * The Elivagar search pipeline (Sec. 3, Fig. 4):
 *
 *   1. generate device- and noise-aware candidates (Algorithm 1);
 *   2. compute Clifford noise resilience for each candidate;
 *   3. reject candidates below the CNR threshold or outside the top
 *      keep-fraction;
 *   4. compute representational capacity for the survivors;
 *   5. rank by the composite score CNR^alpha * RepCap and return the
 *      best circuit.
 *
 * Every stage tallies its circuit executions so the Table 4 resource
 * comparison is measured from the same code path.
 *
 * Resilience: CNR/RepCap evaluations draw from per-candidate seeded RNG
 * streams, so evaluations are order-independent and a crash-interrupted
 * search can resume from its checkpoint journal (SearchResilience::
 * checkpoint_path) to a bit-identical ranking. With resilience enabled,
 * replica executions go through a ResilientExecutor — retry with
 * exponential backoff, per-call/per-run deadline budgets, and a
 * Density -> Stabilizer -> Noiseless degradation ladder whose fallback
 * use is recorded per candidate.
 *
 * Parallelism: candidate generation, CNR and RepCap fan out over a
 * work-stealing thread pool (ElivagarConfig::threads). The result is
 * bit-identical for every thread count: each candidate owns its seeded
 * RNG streams, its executor (retry/fault state included) and its
 * journal records, and per-candidate tallies are merged in
 * candidate-index order so even floating-point accumulation order is
 * fixed. Journal writes are serialized through a single mutex-guarded
 * writer, keeping crash-resume valid under concurrency (see
 * DESIGN.md, "Parallel execution model").
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "common/retry.hpp"
#include "core/candidate_gen.hpp"
#include "core/cnr.hpp"
#include "core/repcap.hpp"
#include "device/device.hpp"
#include "exec/fault_injector.hpp"
#include "qml/dataset.hpp"

namespace elv::core {

/** Execution-resilience knobs of the search. */
struct SearchResilience
{
    /**
     * Route CNR replica executions through a ResilientExecutor (retry,
     * backoff, degradation ladder). Off by default: plain execution,
     * any backend failure propagates.
     */
    bool enabled = false;
    /** Retry/backoff/deadline policy used when enabled. */
    elv::RetryPolicy retry;
    /**
     * Injected failure modes (testing / chaos runs). Only applied when
     * `enabled`; an all-zero config injects nothing.
     */
    exec::FaultConfig faults;
    /**
     * Checkpoint journal path; "" disables journaling. When the file
     * already exists (same configuration fingerprint), the search
     * resumes from it: journaled candidates keep their recorded
     * values and only the remainder is evaluated. Works with
     * resilience disabled too.
     */
    std::string checkpoint_path;
};

/**
 * Runtime observation/control hooks. None of these fields affect search
 * *results* — they only let a controller abort or watch a run — so they
 * are excluded from config_fingerprint and a journaled search resumes
 * under different hooks (e.g. a fresh deadline after a crash).
 */
struct SearchHooks
{
    /**
     * Cooperative cancellation: polled at phase boundaries and at every
     * per-candidate task, from worker threads. A tripped token unwinds
     * elivagar_search with CancelledError; completed stages stay in the
     * checkpoint journal, so a cancelled run resumes where it stopped.
     */
    std::shared_ptr<const elv::CancelToken> cancel;
    /**
     * Progress events: called as `progress(phase, done, total)` once
     * when a phase starts (done = 0) and after each completed
     * per-candidate task. Invoked concurrently from pool workers; the
     * callback must be thread-safe and cheap.
     */
    std::function<void(const char *phase, std::size_t done,
                       std::size_t total)>
        progress;
};

/** Full Elivagar configuration. */
struct ElivagarConfig
{
    /** Candidate pool size. */
    int num_candidates = 64;
    /** Circuit shape (Algorithm 1 inputs). */
    CandidateConfig candidate;
    /** CNR evaluation settings. */
    CnrOptions cnr;
    /** RepCap evaluation settings. */
    RepCapOptions repcap;
    /** Reject candidates with CNR below this threshold (Sec. 5.3). */
    double cnr_threshold = 0.7;
    /** Keep at most this fraction of candidates after CNR ranking. */
    double keep_fraction = 0.5;
    /** Composite-score exponent alpha_CNR (Eq. 7). */
    double alpha_cnr = 0.5;
    /** Skip CNR entirely (the "RepCap only" ablation of Fig. 9). */
    bool use_cnr = true;
    /** Search seed. */
    std::uint64_t seed = 0;
    /**
     * Worker threads for generation/CNR/RepCap (1 = run serially on the
     * calling thread, 0 = one per hardware thread). Any value yields
     * bit-identical results; excluded from config_fingerprint so a
     * checkpointed run can resume under a different thread count.
     */
    int threads = 1;
    /** Fault tolerance, degradation and checkpointing. */
    SearchResilience resilience;
    /** Cancellation + progress observation (not fingerprinted). */
    SearchHooks hooks;
};

/** Per-candidate diagnostics. */
struct CandidateRecord
{
    circ::Circuit circuit;
    double cnr = 1.0;
    double repcap = 0.0;
    double score = 0.0;
    bool rejected_by_cnr = false;
    /**
     * True when this candidate's CNR was serviced by a fallback backend
     * (degradation ladder); degraded scores are auditable, not silent.
     */
    bool degraded = false;
    /** Retries spent on this candidate's executions. */
    std::uint64_t retries = 0;
};

/** Wall-clock spent in one pipeline phase (observability rollup). */
struct PhaseTiming
{
    /** Phase name: "generate", "cnr", "repcap" or "rank". */
    std::string name;
    /** Real seconds spent in the phase (timings vary, values don't). */
    double seconds = 0.0;
};

/** Search output: the chosen circuit plus bookkeeping. */
struct SearchResult
{
    circ::Circuit best_circuit;
    double best_score = 0.0;
    std::vector<CandidateRecord> candidates;
    /** Candidates surviving the CNR filter. */
    int survivors = 0;
    /** Device-style circuit executions spent on CNR. */
    std::uint64_t cnr_executions = 0;
    /** Circuit executions spent on RepCap. */
    std::uint64_t repcap_executions = 0;
    /** Candidates whose evaluation used a fallback backend. */
    int degraded_candidates = 0;
    /** True when journaled stages were replayed from a checkpoint. */
    bool resumed = false;
    /** Retry/degradation tallies (zero with resilience disabled). */
    elv::RetryCounters exec_counters;
    /** Faults injected by the configured FaultConfig. */
    exec::FaultCounters fault_counters;
    /** Simulated wall-clock lost to queue waits and backoff (ms). */
    double simulated_wait_ms = 0.0;
    /** Per-phase wall-clock breakdown, in pipeline order. */
    std::vector<PhaseTiming> phase_timings;
    /** End-to-end wall-clock of elivagar_search (seconds). */
    double total_seconds = 0.0;

    std::uint64_t
    total_executions() const
    {
        return cnr_executions + repcap_executions;
    }

    /** Wall-clock of one phase by name (0 when absent). */
    double
    phase_seconds(const std::string &name) const
    {
        for (const PhaseTiming &phase : phase_timings)
            if (phase.name == name)
                return phase.seconds;
        return 0.0;
    }
};

/**
 * Fingerprint of the configuration fields that determine search
 * results. Fault-injection and retry knobs are excluded on purpose: a
 * run interrupted by injected faults must be resumable with the faults
 * turned off. `threads` is excluded too — thread count never changes
 * results, so a journal written at one count resumes at any other.
 */
std::uint64_t config_fingerprint(const ElivagarConfig &config);

/**
 * Best-effort guess at which configuration field changed between
 * `config` and a journal stamped with fingerprint `stored`: single
 * enumerable-field mutations of `config` (precision flips, use_cnr,
 * backend, noise awareness) are fingerprinted and the one matching
 * `stored` is reported. "" when no single-field change explains the
 * difference. Feed into SearchJournal::set_mismatch_hint so the
 * refusing-to-resume message names the likely culprit.
 */
std::string fingerprint_mismatch_hint(const ElivagarConfig &config,
                                      std::uint64_t stored);

/** @name Per-candidate stage evaluators
 * The exact code elivagar_search runs for one candidate, exposed so
 * out-of-process shard workers (src/dist) compute bit-identical
 * values: every stage seeds its RNG from (config.seed, stage tag,
 * candidate index) alone, so evaluation order — and which process
 * evaluates — never changes a result.
 * @{ */

/** Step-1 generation of candidate `index` of the pool. */
circ::Circuit generate_search_candidate(const dev::Device &device,
                                        const ElivagarConfig &config,
                                        std::size_t index);

/**
 * The run-wide fault configuration shared by every CNR evaluation:
 * with crash_after set, the injectors need one shared execution clock
 * ("crash after N successes" counts across candidates), so build this
 * once per run and pass it to each evaluate_candidate_cnr call.
 */
exec::FaultConfig prepare_fault_config(const ElivagarConfig &config);

/** One candidate's CNR evaluation: value plus cost accounting. */
struct CandidateCnr
{
    double cnr = 0.0;
    std::uint64_t executions = 0;
    bool degraded = false;
    std::uint64_t retries = 0;
    /** @name Resilient-executor tallies (zero with resilience off) @{ */
    elv::RetryCounters counters;
    exec::FaultCounters faults;
    double wait_ms = 0.0;
    /** @} */
};

/** Step-2 CNR of candidate `index` (circuit from step 1). */
CandidateCnr evaluate_candidate_cnr(const dev::Device &device,
                                    const circ::Circuit &circuit,
                                    const ElivagarConfig &config,
                                    const exec::FaultConfig &faults,
                                    std::size_t index);

/** One candidate's RepCap evaluation: value plus cost accounting. */
struct CandidateRepCap
{
    double repcap = 0.0;
    std::uint64_t executions = 0;
};

/** Step-4 RepCap of candidate `index`. */
CandidateRepCap evaluate_candidate_repcap(const circ::Circuit &circuit,
                                          const qml::Dataset &train,
                                          const ElivagarConfig &config,
                                          std::size_t index);

/**
 * Step-3 rejection over the records' cnr fields: below cnr_threshold
 * or outside the top keep_fraction by CNR rank. Never rejects
 * everything — the single most resilient candidate always survives.
 */
void apply_cnr_selection(std::vector<CandidateRecord> &candidates,
                         const ElivagarConfig &config);

/** Step-5 composite score CNR^alpha * RepCap (Eq. 7). */
double composite_score(double cnr, double repcap,
                       const ElivagarConfig &config);

/** @} */

/**
 * Run the Elivagar search for the QML task given by `train` on
 * `device`. The returned circuit is hardware-native (physical qubit
 * labels, coupled 2-qubit gates) and untrained; train it with
 * qml::train_circuit.
 */
SearchResult elivagar_search(const dev::Device &device,
                             const qml::Dataset &train,
                             const ElivagarConfig &config);

} // namespace elv::core
