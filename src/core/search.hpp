/**
 * @file
 * The Elivagar search pipeline (Sec. 3, Fig. 4):
 *
 *   1. generate device- and noise-aware candidates (Algorithm 1);
 *   2. compute Clifford noise resilience for each candidate;
 *   3. reject candidates below the CNR threshold or outside the top
 *      keep-fraction;
 *   4. compute representational capacity for the survivors;
 *   5. rank by the composite score CNR^alpha * RepCap and return the
 *      best circuit.
 *
 * Every stage tallies its circuit executions so the Table 4 resource
 * comparison is measured from the same code path.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "core/candidate_gen.hpp"
#include "core/cnr.hpp"
#include "core/repcap.hpp"
#include "device/device.hpp"
#include "qml/dataset.hpp"

namespace elv::core {

/** Full Elivagar configuration. */
struct ElivagarConfig
{
    /** Candidate pool size. */
    int num_candidates = 64;
    /** Circuit shape (Algorithm 1 inputs). */
    CandidateConfig candidate;
    /** CNR evaluation settings. */
    CnrOptions cnr;
    /** RepCap evaluation settings. */
    RepCapOptions repcap;
    /** Reject candidates with CNR below this threshold (Sec. 5.3). */
    double cnr_threshold = 0.7;
    /** Keep at most this fraction of candidates after CNR ranking. */
    double keep_fraction = 0.5;
    /** Composite-score exponent alpha_CNR (Eq. 7). */
    double alpha_cnr = 0.5;
    /** Skip CNR entirely (the "RepCap only" ablation of Fig. 9). */
    bool use_cnr = true;
    /** Search seed. */
    std::uint64_t seed = 0;
};

/** Per-candidate diagnostics. */
struct CandidateRecord
{
    circ::Circuit circuit;
    double cnr = 1.0;
    double repcap = 0.0;
    double score = 0.0;
    bool rejected_by_cnr = false;
};

/** Search output: the chosen circuit plus bookkeeping. */
struct SearchResult
{
    circ::Circuit best_circuit;
    double best_score = 0.0;
    std::vector<CandidateRecord> candidates;
    /** Candidates surviving the CNR filter. */
    int survivors = 0;
    /** Device-style circuit executions spent on CNR. */
    std::uint64_t cnr_executions = 0;
    /** Circuit executions spent on RepCap. */
    std::uint64_t repcap_executions = 0;

    std::uint64_t
    total_executions() const
    {
        return cnr_executions + repcap_executions;
    }
};

/**
 * Run the Elivagar search for the QML task given by `train` on
 * `device`. The returned circuit is hardware-native (physical qubit
 * labels, coupled 2-qubit gates) and untrained; train it with
 * qml::train_circuit.
 */
SearchResult elivagar_search(const dev::Device &device,
                             const qml::Dataset &train,
                             const ElivagarConfig &config);

} // namespace elv::core
