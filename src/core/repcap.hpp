/**
 * @file
 * Representational capacity (RepCap) — the paper's training-free circuit
 * performance predictor (Sec. 6, Eqs. 3-6, Algorithm 2).
 *
 * RepCap measures intra-class similarity and inter-class separation of
 * the quantum states a circuit produces: d_c samples per class are
 * embedded under n_p random parameter vectors; pairwise state
 * similarities are estimated with a randomized-measurement protocol
 * (random U3 bases appended to the measured qubits, similarity =
 * 1 - TVD of the outcome distributions); and the resulting similarity
 * matrix R_C is compared against the ideal block matrix R_ref:
 *
 *   RepCap(C) = 1 - ||R_C - R_ref||_F^2 / (d_c * n_c)^2.
 */
#pragma once

#include <cstdint>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "qml/dataset.hpp"
#include "sim/precision.hpp"

namespace elv::core {

/** RepCap evaluation options (paper defaults: d_c = 16, n_p = 32). */
struct RepCapOptions
{
    /** Samples drawn from each class. */
    int samples_per_class = 16;
    /** Random parameter initializations averaged over. */
    int param_inits = 32;
    /** Random measurement bases per state pair (n_bases in Eq. 6). */
    int num_bases = 4;
    /**
     * Amplitude precision of the state-vector runs. Float32Proxy is
     * the ranking-only fast path (see sim/precision.hpp); similarity
     * accumulation always stays double.
     */
    sim::Precision precision = sim::Precision::Float64;
    /**
     * Elide ops outside the measurement lightcone before compiling the
     * fused program (lint/dataflow.hpp). The prune preserves the
     * declared parameter count and slot numbering — the random
     * parameter vectors are sized by num_params(), so dropping slots
     * would shift every subsequent RNG draw; with slots preserved the
     * streams stay aligned and only the (mathematically invisible)
     * dead rotations disappear from the simulation. Rankings are
     * bit-identical; scores differ only in floating-point
     * reassociation. Fingerprinted.
     */
    bool prune_dead_structure = false;
};

/** RepCap value plus cost accounting. */
struct RepCapResult
{
    double repcap = 0.0;
    /**
     * Circuit executions consumed, counted as in the paper's cost model
     * (Sec. 6.1): one execution per (sample, parameter-init) pair, i.e.
     * n_c * d_c * n_p; randomized bases reuse the prepared state.
     */
    std::uint64_t circuit_executions = 0;
};

/**
 * Compute RepCap of a circuit on (a subsample of) `data` using noiseless
 * simulation, as the paper does (RepCap is deliberately noise-agnostic;
 * noise robustness is CNR's job).
 */
RepCapResult representational_capacity(const circ::Circuit &circuit,
                                       const qml::Dataset &data,
                                       elv::Rng &rng,
                                       const RepCapOptions &options = {});

} // namespace elv::core
