#include "core/run_report.hpp"

#include <cstdio>

#include "common/logging.hpp"
#include "common/runinfo.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "sim/cpu_features.hpp"
#include "sim/precision.hpp"

namespace elv::core {

namespace {

void
write_config(obs::JsonWriter &json, const ElivagarConfig &config)
{
    json.key("config").begin_object();
    json.kv("num_candidates", config.num_candidates);
    json.kv("num_qubits", config.candidate.num_qubits);
    json.kv("num_params", config.candidate.num_params);
    json.kv("num_embeds", config.candidate.num_embeds);
    json.kv("num_meas", config.candidate.num_meas);
    json.kv("cnr_replicas", config.cnr.num_replicas);
    json.kv("cnr_shots", config.cnr.shots);
    json.kv("cnr_noise_scale", config.cnr.noise_scale);
    json.kv("cnr_threshold", config.cnr_threshold);
    json.kv("keep_fraction", config.keep_fraction);
    json.kv("alpha_cnr", config.alpha_cnr);
    json.kv("use_cnr", config.use_cnr);
    json.kv("seed", static_cast<std::uint64_t>(config.seed));
    json.kv("threads", config.threads);
    json.kv("resilience_enabled", config.resilience.enabled);
    json.kv("checkpoint_path", config.resilience.checkpoint_path);
    json.end_object();
}

void
write_search(obs::JsonWriter &json, const SearchResult &result)
{
    json.key("search").begin_object();
    json.kv("best_score", result.best_score);
    json.kv("survivors", result.survivors);
    json.kv("cnr_executions", result.cnr_executions);
    json.kv("repcap_executions", result.repcap_executions);
    json.kv("total_executions", result.total_executions());
    json.kv("degraded_candidates", result.degraded_candidates);
    json.kv("resumed", result.resumed);
    json.kv("simulated_wait_ms", result.simulated_wait_ms);

    const elv::RetryCounters &exec = result.exec_counters;
    json.key("exec").begin_object();
    json.kv("calls", exec.calls);
    json.kv("attempts", exec.attempts);
    json.kv("failures", exec.failures);
    json.kv("retries", exec.retries);
    json.kv("invalid_results", exec.invalid_results);
    json.kv("rungs_exhausted", exec.rungs_exhausted);
    json.kv("degraded_calls", exec.degraded_calls);
    json.kv("backoff_wait_ms", exec.backoff_wait_ms);
    json.kv("queue_wait_ms", exec.queue_wait_ms);
    json.end_object();

    const exec::FaultCounters &faults = result.fault_counters;
    json.key("faults").begin_object();
    json.kv("transient", faults.transient);
    json.kv("timeouts", faults.timeouts);
    json.kv("garbage", faults.garbage);
    json.kv("drifts", faults.drifts);
    json.kv("crashes", faults.crashes);
    json.kv("total", faults.total());
    json.end_object();

    json.end_object();
}

void
write_phases(obs::JsonWriter &json, const SearchResult &result)
{
    json.key("phases").begin_array();
    for (const PhaseTiming &phase : result.phase_timings) {
        json.begin_object();
        json.kv("name", phase.name);
        json.kv("seconds", phase.seconds);
        json.end_object();
    }
    json.end_array();
    json.kv("total_seconds", result.total_seconds);
}

void
write_candidates(obs::JsonWriter &json, const SearchResult &result)
{
    json.key("candidates").begin_array();
    for (std::size_t n = 0; n < result.candidates.size(); ++n) {
        const CandidateRecord &record = result.candidates[n];
        json.begin_object();
        json.kv("index", static_cast<std::uint64_t>(n));
        json.kv("num_gates",
                static_cast<std::uint64_t>(record.circuit.ops().size()));
        json.kv("cnr", record.cnr);
        json.kv("repcap", record.repcap);
        json.kv("score", record.score);
        json.kv("rejected_by_cnr", record.rejected_by_cnr);
        json.kv("degraded", record.degraded);
        json.kv("retries", record.retries);
        json.end_object();
    }
    json.end_array();
}

void
write_metrics(obs::JsonWriter &json)
{
    const obs::MetricsSnapshot snap =
        obs::Registry::global().snapshot();
    json.key("metrics").begin_object();
    json.kv("enabled", obs::Registry::global().enabled());

    json.key("counters").begin_object();
    for (const auto &counter : snap.counters)
        json.kv(counter.name, counter.value);
    json.end_object();

    json.key("gauges").begin_object();
    for (const auto &gauge : snap.gauges) {
        json.key(gauge.name).begin_object();
        json.kv("value", gauge.value);
        json.kv("max", gauge.max);
        json.end_object();
    }
    json.end_object();

    json.key("histograms").begin_object();
    for (const auto &hist : snap.histograms) {
        json.key(hist.name).begin_object();
        json.key("edges").begin_array();
        for (double edge : hist.edges)
            json.value(edge);
        json.end_array();
        json.key("counts").begin_array();
        for (std::uint64_t count : hist.counts)
            json.value(count);
        json.end_array();
        json.kv("sum", hist.sum);
        json.kv("q50", hist.quantile(0.5));
        json.kv("q90", hist.quantile(0.9));
        json.kv("q99", hist.quantile(0.99));
        json.end_object();
    }
    json.end_object();

    json.end_object();
}

} // namespace

std::string
run_report_json(const ElivagarConfig &config, const SearchResult &result)
{
    obs::JsonWriter json;
    json.begin_object();
    json.kv("report", "elivagar_search");
    json.kv("version", elv::version_string());
    json.kv("timestamp", elv::iso8601_utc_now());
    // Execution provenance: kernel tier actually dispatched and the
    // proxy-scoring precision, so a report is self-describing when
    // artifacts from different machines or builds are compared.
    json.kv("kernel_dispatch",
            sim::kernel_tier_name(sim::active_tier()));
    json.kv("precision", sim::precision_name(config.cnr.precision));
    write_config(json, config);
    write_search(json, result);
    write_phases(json, result);
    write_candidates(json, result);
    write_metrics(json);
    json.end_object();
    return json.str();
}

bool
write_run_report(const std::string &path, const ElivagarConfig &config,
                 const SearchResult &result)
{
    const std::string doc = run_report_json(config, result);
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (!file) {
        elv::warn("cannot write run report to " + path);
        return false;
    }
    std::fwrite(doc.data(), 1, doc.size(), file);
    std::fputc('\n', file);
    std::fclose(file);
    return true;
}

} // namespace elv::core
