#include "core/expressibility.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "sim/statevector.hpp"

namespace elv::core {

ExpressibilityResult
expressibility(const circ::Circuit &circuit, elv::Rng &rng,
               const ExpressibilityOptions &options)
{
    ELV_REQUIRE(options.num_pairs >= 2 && options.num_bins >= 2,
                "bad expressibility options");

    std::vector<int> kept;
    const circ::Circuit local = circuit.compacted(kept);
    const std::vector<double> x(
        static_cast<std::size_t>(std::max(1, local.num_data_features())),
        0.0);

    ExpressibilityResult result;
    std::vector<double> histogram(
        static_cast<std::size_t>(options.num_bins), 0.0);

    sim::StateVector a(local.num_qubits());
    sim::StateVector b(local.num_qubits());
    std::vector<double> pa(static_cast<std::size_t>(local.num_params()));
    std::vector<double> pb(pa.size());
    for (int pair = 0; pair < options.num_pairs; ++pair) {
        for (auto &v : pa)
            v = rng.uniform(-M_PI, M_PI);
        for (auto &v : pb)
            v = rng.uniform(-M_PI, M_PI);
        a.run(local, pa, x);
        b.run(local, pb, x);
        result.circuit_executions += 2;
        const double fidelity = a.overlap(b);
        const int bin = std::min(
            options.num_bins - 1,
            static_cast<int>(fidelity * options.num_bins));
        histogram[static_cast<std::size_t>(bin)] += 1.0;
    }
    for (double &h : histogram)
        h /= options.num_pairs;

    // Haar fidelity CDF: 1 - (1 - F)^(N-1); integrate per bin exactly.
    const double n_minus_1 =
        std::pow(2.0, local.num_qubits()) - 1.0;
    double kl = 0.0;
    for (int bin = 0; bin < options.num_bins; ++bin) {
        const double lo = static_cast<double>(bin) / options.num_bins;
        const double hi = static_cast<double>(bin + 1) / options.num_bins;
        const double haar = std::pow(1.0 - lo, n_minus_1) -
                            std::pow(1.0 - hi, n_minus_1);
        const double p = histogram[static_cast<std::size_t>(bin)];
        if (p > 0.0)
            kl += p * std::log(p / std::max(haar, 1e-12));
    }
    result.kl_divergence = kl;
    return result;
}

} // namespace elv::core
