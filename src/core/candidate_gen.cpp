#include "core/candidate_gen.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "circuit/builders.hpp"
#include "common/logging.hpp"
#include "lint/preflight.hpp"

namespace elv::core {

using circ::Circuit;
using circ::GateKind;

namespace {

/** Edges of the device topology internal to a qubit subset. */
std::vector<std::pair<int, int>>
internal_edges(const dev::Device &device, const std::vector<int> &qubits)
{
    std::set<int> members(qubits.begin(), qubits.end());
    std::vector<std::pair<int, int>> edges;
    for (const auto &[a, b] : device.topology.edges())
        if (members.count(a) && members.count(b))
            edges.emplace_back(a, b);
    return edges;
}

/** Noise quality of a subgraph: higher is better (line 2 weights). */
double
subgraph_quality(const dev::Device &device, const std::vector<int> &qubits)
{
    const double t1_max =
        *std::max_element(device.t1_us.begin(), device.t1_us.end());
    double qubit_term = 0.0;
    for (int q : qubits) {
        const std::size_t idx = static_cast<std::size_t>(q);
        qubit_term += (1.0 - device.readout_error[idx]) *
                      (device.t1_us[idx] / t1_max);
    }
    qubit_term /= static_cast<double>(qubits.size());

    const auto edges = internal_edges(device, qubits);
    double edge_term = 1.0;
    if (!edges.empty()) {
        edge_term = 0.0;
        for (const auto &[a, b] : edges)
            edge_term += 1.0 - device.edge_error(a, b);
        edge_term /= static_cast<double>(edges.size());
    }
    return qubit_term * edge_term;
}

/** Per-qubit coherence weight for 1-qubit gate placement (line 7). */
double
qubit_weight(const dev::Device &device, int q, int existing_gates,
             bool noise_aware)
{
    if (!noise_aware)
        return 1.0;
    const std::size_t idx = static_cast<std::size_t>(q);
    const double coherence =
        device.t1_us[idx] * device.t2_us[idx] /
        (device.t1_us[idx] * device.t2_us[idx] + 1.0);
    // Mild spreading pressure: qubits already loaded with gates get a
    // lower weight so depth stays balanced across the subgraph.
    return (0.2 + coherence) /
           std::sqrt(1.0 + static_cast<double>(existing_gates));
}

/** Per-edge weight for 2-qubit gate placement (line 10). */
double
edge_weight(const dev::Device &device, const std::pair<int, int> &edge,
            int existing_gates, bool noise_aware)
{
    if (!noise_aware)
        return 1.0;
    const double fidelity =
        1.0 - device.edge_error(edge.first, edge.second);
    return std::pow(fidelity, 4.0) /
           std::sqrt(1.0 + static_cast<double>(existing_gates));
}

} // namespace

Circuit
generate_candidate(const dev::Device &device, const CandidateConfig &config,
                   elv::Rng &rng)
{
    ELV_REQUIRE(config.num_qubits >= 1 &&
                    config.num_qubits <= device.num_qubits(),
                "bad candidate qubit count");
    ELV_REQUIRE(config.num_meas >= 1 &&
                    config.num_meas <= config.num_qubits,
                "bad measurement count");

    // Line 1-2: sample a pool of connected subgraphs, pick one from the
    // noise-quality distribution.
    std::vector<std::vector<int>> pool;
    std::vector<double> weights;
    for (int s = 0; s < std::max(1, config.subgraph_pool); ++s) {
        auto sub = dev::sample_connected_subgraph(device.topology,
                                                  config.num_qubits, rng);
        const double quality =
            config.noise_aware ? subgraph_quality(device, sub) : 1.0;
        pool.push_back(std::move(sub));
        // Sharpen the distribution so good subgraphs dominate without
        // collapsing to argmax.
        weights.push_back(std::pow(quality, 4.0));
    }
    const std::vector<int> subgraph = pool[rng.categorical(weights)];
    const auto edges = internal_edges(device, subgraph);

    // Line 3-4: build the op list. Circuits use physical qubit labels.
    Circuit c(device.num_qubits());

    // Optional fixed-embedding prefix (Fig. 10 ablations) on the
    // subgraph qubits.
    std::vector<int> fixed_embed_features;
    if (config.embedding != EmbeddingMode::Searched) {
        // Build the prefix on a logical register, then relocate it onto
        // the subgraph.
        Circuit prefix(config.num_qubits);
        if (config.embedding == EmbeddingMode::FixedAngle)
            circ::append_angle_embedding(prefix, config.num_features);
        else
            circ::append_iqp_embedding(prefix, config.num_features);
        std::vector<int> mapping(subgraph.begin(), subgraph.end());
        // IQP uses nearest-neighbour CX; those pairs may not be coupled
        // on the subgraph, so route chain gates along subgraph order —
        // subgraph qubits are connected but not necessarily a path. To
        // stay hardware-native we relocate 2-qubit prefix gates onto
        // actual internal edges round-robin.
        std::size_t edge_cursor = 0;
        for (const circ::Op &op : prefix.ops()) {
            circ::Op copy = op;
            if (op.num_qubits() == 2) {
                ELV_REQUIRE(!edges.empty(),
                            "IQP embedding needs a 2-qubit coupler");
                const auto &e = edges[edge_cursor % edges.size()];
                ++edge_cursor;
                copy.qubits[0] = e.first;
                copy.qubits[1] = e.second;
                c.append_op(copy);
            } else {
                copy.qubits[0] =
                    mapping[static_cast<std::size_t>(op.qubits[0])];
                c.append_op(copy);
            }
        }
    }

    // Sample the variational gate list.
    std::vector<int> gates_on_qubit(
        static_cast<std::size_t>(device.num_qubits()), 0);
    std::vector<int> gates_on_edge(edges.size(), 0);
    const GateKind rotations[3] = {GateKind::RX, GateKind::RY,
                                   GateKind::RZ};
    const int rotation_budget =
        config.num_params +
        (config.embedding == EmbeddingMode::Searched ? config.num_embeds
                                                     : 0);
    int placed_rotations = 0;
    std::vector<std::size_t> rotation_op_indices;
    while (placed_rotations < rotation_budget) {
        const bool place_2q =
            !edges.empty() && rng.uniform() < 0.35;
        if (place_2q) {
            std::vector<double> ew(edges.size());
            for (std::size_t e = 0; e < edges.size(); ++e)
                ew[e] = edge_weight(device, edges[e],
                                    gates_on_edge[e],
                                    config.noise_aware);
            const std::size_t pick = rng.categorical(ew);
            const GateKind kind =
                rng.bernoulli(0.5) ? GateKind::CX : GateKind::CZ;
            c.add_gate(kind, {edges[pick].first, edges[pick].second});
            ++gates_on_edge[pick];
            ++gates_on_qubit[static_cast<std::size_t>(
                edges[pick].first)];
            ++gates_on_qubit[static_cast<std::size_t>(
                edges[pick].second)];
        } else {
            std::vector<double> qw(subgraph.size());
            for (std::size_t i = 0; i < subgraph.size(); ++i)
                qw[i] = qubit_weight(
                    device, subgraph[i],
                    gates_on_qubit[static_cast<std::size_t>(subgraph[i])],
                    config.noise_aware);
            const int q = subgraph[rng.categorical(qw)];
            const GateKind kind = rotations[rng.uniform_index(3)];
            rotation_op_indices.push_back(
                c.add_variational(kind, {q}));
            ++gates_on_qubit[static_cast<std::size_t>(q)];
            ++placed_rotations;
        }
    }

    // Line 12-13: measurement qubits weighted by readout fidelity.
    {
        std::vector<int> remaining = subgraph;
        std::vector<int> measured;
        for (int m = 0; m < config.num_meas; ++m) {
            std::vector<double> mw(remaining.size());
            for (std::size_t i = 0; i < remaining.size(); ++i)
                mw[i] = config.noise_aware
                            ? 1.0 - device.readout_error
                                        [static_cast<std::size_t>(
                                            remaining[i])]
                            : 1.0;
            const std::size_t pick = rng.categorical(mw);
            measured.push_back(remaining[pick]);
            remaining.erase(remaining.begin() +
                            static_cast<std::ptrdiff_t>(pick));
        }
        std::sort(measured.begin(), measured.end());
        c.set_measured(measured);
    }

    // Line 14: designate random rotation gates as data embeddings.
    if (config.embedding == EmbeddingMode::Searched) {
        ELV_REQUIRE(config.num_embeds <=
                        static_cast<int>(rotation_op_indices.size()),
                    "more embeddings than rotation gates");
        rng.shuffle(rotation_op_indices);
        // Deal features cyclically from a shuffled deck so that every
        // feature appears when num_embeds >= num_features, while the
        // gate/feature pairing stays random.
        std::vector<int> features(
            static_cast<std::size_t>(config.num_features));
        for (int f = 0; f < config.num_features; ++f)
            features[static_cast<std::size_t>(f)] = f;
        rng.shuffle(features);
        for (int e = 0; e < config.num_embeds; ++e) {
            const int feature = features[static_cast<std::size_t>(
                e % config.num_features)];
            c.designate_embedding(rotation_op_indices
                                      [static_cast<std::size_t>(e)],
                                  feature);
        }
    }

    ELV_REQUIRE(c.num_params() == config.num_params,
                "parameter budget mismatch");

    // Pre-flight: a generated candidate is device-native by
    // construction; a lint violation here is a generator bug, not a
    // property of the sampled circuit.
    lint::LintOptions lint_options;
    lint_options.device = &device;
    lint::preflight(c, lint::Boundary::CandidateGen, lint_options);
    return c;
}

Circuit
generate_device_unaware(const CandidateConfig &config, elv::Rng &rng)
{
    // Same rotation/entangler budget as generate_candidate, but qubit
    // pairs are chosen uniformly over a fully-connected register.
    Circuit c(config.num_qubits);
    const GateKind rotations[3] = {GateKind::RX, GateKind::RY,
                                   GateKind::RZ};
    const int rotation_budget = config.num_params + config.num_embeds;
    int placed = 0;
    std::vector<std::size_t> rotation_op_indices;
    while (placed < rotation_budget) {
        if (config.num_qubits >= 2 && rng.uniform() < 0.35) {
            const int a = static_cast<int>(rng.uniform_index(
                static_cast<std::size_t>(config.num_qubits)));
            int b = static_cast<int>(rng.uniform_index(
                static_cast<std::size_t>(config.num_qubits - 1)));
            if (b >= a)
                ++b;
            c.add_gate(rng.bernoulli(0.5) ? GateKind::CX : GateKind::CZ,
                       {a, b});
        } else {
            const int q = static_cast<int>(rng.uniform_index(
                static_cast<std::size_t>(config.num_qubits)));
            rotation_op_indices.push_back(c.add_variational(
                rotations[rng.uniform_index(3)], {q}));
            ++placed;
        }
    }
    std::vector<int> meas(static_cast<std::size_t>(config.num_meas));
    for (int m = 0; m < config.num_meas; ++m)
        meas[static_cast<std::size_t>(m)] = m;
    c.set_measured(meas);

    rng.shuffle(rotation_op_indices);
    std::vector<int> features(
        static_cast<std::size_t>(config.num_features));
    for (int f = 0; f < config.num_features; ++f)
        features[static_cast<std::size_t>(f)] = f;
    rng.shuffle(features);
    for (int e = 0; e < config.num_embeds; ++e)
        c.designate_embedding(
            rotation_op_indices[static_cast<std::size_t>(e)],
            features[static_cast<std::size_t>(e % config.num_features)]);
    // Device-unaware circuits assume full connectivity: structural
    // lint only (they are SABRE-routed before touching a device).
    lint::preflight(c, lint::Boundary::CandidateGen);
    return c;
}

} // namespace elv::core
