#include "core/cnr.hpp"

#include <memory>

#include "circuit/clifford_replica.hpp"
#include "common/logging.hpp"
#include "lint/dataflow.hpp"
#include "obs/metrics.hpp"

namespace elv::core {

exec::BackendKind
cnr_backend_kind(CnrBackend backend)
{
    return backend == CnrBackend::Density ? exec::BackendKind::Density
                                          : exec::BackendKind::Stabilizer;
}

CnrResult
clifford_noise_resilience(const circ::Circuit &circuit,
                          const dev::Device &device, elv::Rng &rng,
                          const CnrOptions &options)
{
    ELV_REQUIRE(options.num_replicas >= 1, "need at least one replica");
    CnrResult result;

    // Route every replica execution through the exec layer: the
    // caller's executor when provided (resilient, fault-injected, ...),
    // otherwise a plain backend matching the configured CnrBackend.
    std::unique_ptr<exec::Executor> owned;
    exec::Executor *executor = options.executor;
    if (!executor) {
        if (options.backend == CnrBackend::Density)
            owned = std::make_unique<exec::DensityExecutor>(
                device, options.noise_scale, options.precision);
        else
            owned = std::make_unique<exec::StabilizerExecutor>(
                device, options.shots, options.noise_scale);
        executor = owned.get();
    }

    double fidelity_sum = 0.0;
    for (int m = 0; m < options.num_replicas; ++m) {
        circ::Circuit replica = circ::make_clifford_replica(circuit, rng);
        if (options.prune_dead_structure) {
            // Prune the REPLICA, not the source: replica construction
            // draws from `rng` per parametric gate, so eliding source
            // ops first would shift the stream and change every
            // replica after the first dead gate.
            std::size_t elided = 0;
            replica = lint::prune_to_lightcone(replica, &elided);
            if (elided > 0)
                ELV_METRIC_COUNT_N("lint.ops_elided",
                                   static_cast<std::uint64_t>(elided));
        }
        fidelity_sum += executor->replica_fidelity(replica, rng);
        ++result.circuit_executions;
        if (const exec::CallReport *report = executor->last_report()) {
            result.degraded |= report->degraded;
            result.retries +=
                static_cast<std::uint64_t>(report->retries);
        }
    }

    result.cnr = fidelity_sum / options.num_replicas;
    return result;
}

} // namespace elv::core
