#include "core/cnr.hpp"

#include "circuit/clifford_replica.hpp"
#include "common/logging.hpp"
#include "common/statistics.hpp"
#include "noise/noise_model.hpp"
#include "sim/statevector.hpp"
#include "stabilizer/tableau.hpp"

namespace elv::core {

CnrResult
clifford_noise_resilience(const circ::Circuit &circuit,
                          const dev::Device &device, elv::Rng &rng,
                          const CnrOptions &options)
{
    ELV_REQUIRE(options.num_replicas >= 1, "need at least one replica");
    CnrResult result;

    const noise::NoisyDensitySimulator noisy_sim(device,
                                                 options.noise_scale);

    double fidelity_sum = 0.0;
    for (int m = 0; m < options.num_replicas; ++m) {
        const circ::Circuit replica =
            circ::make_clifford_replica(circuit, rng);

        if (options.backend == CnrBackend::Density) {
            fidelity_sum += noisy_sim.fidelity(replica);
        } else {
            std::vector<int> kept;
            const circ::Circuit local = replica.compacted(kept);
            // Noiseless side: stabilizer sampling (efficient at any
            // size). Noisy side: stochastic Pauli injection.
            elv::Rng ideal_rng = rng.split();
            const auto ideal = stab::sample_distribution(
                local, options.shots, ideal_rng);
            const noise::DevicePauliNoise hook(device, kept,
                                               options.noise_scale);
            elv::Rng noisy_rng = rng.split();
            const auto noisy = stab::sample_distribution(
                local, options.shots, noisy_rng, &hook);
            fidelity_sum +=
                1.0 - elv::total_variation_distance(ideal, noisy);
        }
        ++result.circuit_executions;
    }

    result.cnr = fidelity_sum / options.num_replicas;
    return result;
}

} // namespace elv::core
