/**
 * @file
 * Circuit expressibility (Sim, Johnson & Aspuru-Guzik, 2019) — the
 * established circuit-quality metric the paper's related work (Sec. 10.1)
 * notes is "unsuitable for QCS due to high cost". Implemented here as an
 * ablation: the predictor-comparison bench contrasts its predictive
 * power and execution cost against RepCap.
 *
 * Expressibility is the KL divergence between (a) the fidelity
 * distribution of output states for random parameter pairs and (b) the
 * Haar-random fidelity distribution P(F) = (N-1)(1-F)^(N-2). Lower
 * divergence = the ansatz covers state space more uniformly.
 */
#pragma once

#include <cstdint>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"

namespace elv::core {

/** Expressibility estimation options. */
struct ExpressibilityOptions
{
    /** Random parameter pairs sampled. */
    int num_pairs = 64;
    /** Histogram bins for the fidelity distribution. */
    int num_bins = 24;
};

/** Expressibility value plus cost accounting. */
struct ExpressibilityResult
{
    /** KL(empirical fidelities || Haar); lower = more expressive. */
    double kl_divergence = 0.0;
    /** Circuit executions consumed (two per sampled pair). */
    std::uint64_t circuit_executions = 0;
};

/**
 * Estimate expressibility of the circuit's variational ansatz. Data
 * embeddings are bound to zeros (the metric characterizes the trainable
 * part, independent of any dataset).
 */
ExpressibilityResult expressibility(const circ::Circuit &circuit,
                                    elv::Rng &rng,
                                    const ExpressibilityOptions &options =
                                        {});

} // namespace elv::core
