#include "core/checkpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "circuit/serialize.hpp"
#include "common/logging.hpp"

namespace elv::core {

std::string
double_to_hex(double value)
{
    // Hexfloat survives the text round-trip bit-exactly, which is what
    // makes a resumed ranking identical to an uninterrupted one.
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%a", value);
    return buffer;
}

double
double_from_hex(const std::string &text)
{
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        elv::fatal("journal: bad numeric field '" + text + "'");
    return value;
}

SearchJournal::SearchJournal(std::string path, std::uint64_t fingerprint)
    : path_(std::move(path)), fingerprint_(fingerprint)
{
    ELV_REQUIRE(!path_.empty(), "journal needs a path");
}

CheckpointEntry &
SearchJournal::slot(int index)
{
    return entries_[index];
}

const CheckpointEntry *
SearchJournal::entry(int index) const
{
    const auto it = entries_.find(index);
    return it == entries_.end() ? nullptr : &it->second;
}

bool
SearchJournal::parse_record(const std::string &line)
{
    std::istringstream ls(line);
    std::string keyword;
    int index = -1;
    ls >> keyword >> index;
    if (index < 0)
        return false;
    if (keyword == "cand") {
        // The circuit text itself contains spaces; take the whole
        // remainder of the line.
        std::string circuit_line;
        std::getline(ls >> std::ws, circuit_line);
        if (circuit_line.empty())
            return false;
        // Parse now so a truncated/corrupt circuit fails at load, not
        // mid-search.
        try {
            circ::from_text_line(circuit_line);
        } catch (const elv::UsageError &) {
            return false;
        }
        slot(index).circuit_line = std::move(circuit_line);
        return true;
    }
    if (keyword == "cnr") {
        // Every field must extract: a record torn mid-write would
        // otherwise load a wrong value or drop its execution count.
        std::string value;
        std::uint64_t executions = 0, retries = 0;
        int degraded = 0;
        if (!(ls >> value >> executions >> degraded >> retries))
            return false;
        CheckpointEntry &e = slot(index);
        e.has_cnr = true;
        e.cnr = double_from_hex(value);
        e.cnr_executions = executions;
        e.degraded = degraded != 0;
        e.retries = retries;
        return true;
    }
    if (keyword == "repcap") {
        std::string value;
        std::uint64_t executions = 0;
        if (!(ls >> value >> executions))
            return false;
        CheckpointEntry &e = slot(index);
        e.has_repcap = true;
        e.repcap = double_from_hex(value);
        e.repcap_executions = executions;
        return true;
    }
    if (keyword == "rank") {
        // Audit record; the ranking is recomputed on resume.
        std::string score;
        int rejected = 0;
        return static_cast<bool>(ls >> score >> rejected);
    }
    return false;
}

bool
SearchJournal::load()
{
    std::ifstream in(path_, std::ios::binary);
    if (!in)
        return false;

    std::string line;
    if (!std::getline(in, line) || line != "elv-search-journal 1")
        elv::fatal("journal " + path_ + ": missing header");
    if (!std::getline(in, line))
        elv::fatal("journal " + path_ + ": missing fingerprint");
    {
        std::istringstream ls(line);
        std::string keyword, hex;
        ls >> keyword >> hex;
        if (keyword != "fingerprint" || hex.empty())
            elv::fatal("journal " + path_ + ": bad fingerprint line");
        const std::uint64_t seen =
            std::strtoull(hex.c_str(), nullptr, 16);
        if (seen != fingerprint_)
            elv::fatal("journal " + path_ +
                       " was written by a different search "
                       "configuration; refusing to resume from it");
    }

    // A crash can tear the record in flight, so a malformed FINAL line
    // is an expected artifact: drop it (and truncate it away so later
    // loads stay clean). A malformed line anywhere else is corruption.
    std::streampos line_start = in.tellg();
    std::streampos torn_at(-1);
    while (std::getline(in, line)) {
        // getline on the unterminated final line still extracts it.
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (!line.empty() && !parse_record(line)) {
            const std::string bad = line;
            torn_at = line_start;
            if (std::getline(in, line))
                elv::fatal("journal " + path_ + ": corrupt record '" +
                           bad + "'");
            break;
        }
        line_start = in.tellg();
    }
    in.close();
    if (torn_at >= std::streampos(0)) {
        elv::warn("journal " + path_ +
                  ": dropping record torn by an interrupted write");
        std::filesystem::resize_file(
            path_, static_cast<std::uintmax_t>(torn_at));
    }
    header_written_ = true;
    return !entries_.empty();
}

void
SearchJournal::append(const std::string &line, bool with_header)
{
    // Open-append-close per record: the line is on disk (and the
    // descriptor flushed) before the search advances, so a crash loses
    // at most the stage in flight.
    std::ofstream out(path_, std::ios::app);
    if (!out)
        elv::fatal("cannot open journal " + path_ + " for appending");
    if (with_header && !header_written_) {
        char hex[32];
        std::snprintf(hex, sizeof(hex), "%016llx",
                      static_cast<unsigned long long>(fingerprint_));
        out << "elv-search-journal 1\n";
        out << "fingerprint " << hex << "\n";
        header_written_ = true;
    }
    out << line << "\n";
    out.flush();
    if (!out)
        elv::fatal("failed to append to journal " + path_);
}

void
SearchJournal::record_candidate(int index, const circ::Circuit &circuit)
{
    std::string line = circ::to_text_line(circuit);
    append("cand " + std::to_string(index) + " " + line, true);
    slot(index).circuit_line = std::move(line);
}

void
SearchJournal::record_cnr(int index, double cnr,
                          std::uint64_t executions, bool degraded,
                          std::uint64_t retries)
{
    append("cnr " + std::to_string(index) + " " + double_to_hex(cnr) +
               " " + std::to_string(executions) + " " +
               (degraded ? "1" : "0") + " " + std::to_string(retries),
           true);
    CheckpointEntry &e = slot(index);
    e.has_cnr = true;
    e.cnr = cnr;
    e.cnr_executions = executions;
    e.degraded = degraded;
    e.retries = retries;
}

void
SearchJournal::record_repcap(int index, double repcap,
                             std::uint64_t executions)
{
    append("repcap " + std::to_string(index) + " " +
               double_to_hex(repcap) + " " + std::to_string(executions),
           true);
    CheckpointEntry &e = slot(index);
    e.has_repcap = true;
    e.repcap = repcap;
    e.repcap_executions = executions;
}

void
SearchJournal::record_rank(int index, double score, bool rejected)
{
    append("rank " + std::to_string(index) + " " + double_to_hex(score) +
               " " + (rejected ? "1" : "0"),
           true);
}

} // namespace elv::core
