#include "core/checkpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "circuit/serialize.hpp"
#include "common/logging.hpp"

namespace elv::core {

std::string
double_to_hex(double value)
{
    // Hexfloat survives the text round-trip bit-exactly, which is what
    // makes a resumed ranking identical to an uninterrupted one.
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%a", value);
    return buffer;
}

double
double_from_hex(const std::string &text)
{
    double value = 0.0;
    if (!try_double_from_hex(text, value))
        elv::fatal("journal: bad numeric field '" + text + "'");
    return value;
}

bool
try_double_from_hex(const std::string &text, double &value)
{
    char *end = nullptr;
    value = std::strtod(text.c_str(), &end);
    return end != text.c_str() && *end == '\0';
}

namespace {

/** FNV-1a over the record body (the torn-write detector). */
std::uint64_t
record_hash(const std::string &body)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (const char c : body) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

} // namespace

std::string
record_with_checksum(const std::string &body)
{
    char sum[32];
    std::snprintf(sum, sizeof(sum), " ~%016llx",
                  static_cast<unsigned long long>(record_hash(body)));
    return body + sum;
}

bool
strip_record_checksum(std::string &line)
{
    // The token is " ~" + 16 hex digits, always at the end of the line.
    constexpr std::size_t token = 2 + 16;
    if (line.size() < token + 1)
        return false;
    const std::size_t body_len = line.size() - token;
    if (line[body_len] != ' ' || line[body_len + 1] != '~')
        return false;
    const std::string hex = line.substr(body_len + 2);
    char *end = nullptr;
    const std::uint64_t seen = std::strtoull(hex.c_str(), &end, 16);
    if (end != hex.c_str() + 16)
        return false;
    line.resize(body_len);
    return seen == record_hash(line);
}

SearchJournal::SearchJournal(std::string path, std::uint64_t fingerprint)
    : path_(std::move(path)), fingerprint_(fingerprint)
{
    ELV_REQUIRE(!path_.empty(), "journal needs a path");
}

CheckpointEntry &
SearchJournal::slot(int index)
{
    return entries_[index];
}

const CheckpointEntry *
SearchJournal::entry(int index) const
{
    const auto it = entries_.find(index);
    return it == entries_.end() ? nullptr : &it->second;
}

bool
SearchJournal::parse_record(const std::string &line)
{
    std::istringstream ls(line);
    std::string keyword;
    int index = -1;
    ls >> keyword >> index;
    if (index < 0)
        return false;
    if (keyword == "cand") {
        // The circuit text itself contains spaces; take the whole
        // remainder of the line.
        std::string circuit_line;
        std::getline(ls >> std::ws, circuit_line);
        if (circuit_line.empty())
            return false;
        // Parse now so a truncated/corrupt circuit fails at load, not
        // mid-search. Any parse failure — including invariant throws on
        // mangled bytes — just marks the record malformed; load()
        // decides whether that means torn tail or corruption.
        try {
            circ::from_text_line(circuit_line);
        } catch (const std::exception &) {
            return false;
        }
        slot(index).circuit_line = std::move(circuit_line);
        return true;
    }
    if (keyword == "cnr") {
        // Every field must extract: a record torn mid-write would
        // otherwise load a wrong value or drop its execution count.
        std::string value;
        std::uint64_t executions = 0, retries = 0;
        int degraded = 0;
        double cnr = 0.0;
        if (!(ls >> value >> executions >> degraded >> retries) ||
            !try_double_from_hex(value, cnr))
            return false;
        CheckpointEntry &e = slot(index);
        e.has_cnr = true;
        e.cnr = cnr;
        e.cnr_executions = executions;
        e.degraded = degraded != 0;
        e.retries = retries;
        return true;
    }
    if (keyword == "repcap") {
        std::string value;
        std::uint64_t executions = 0;
        double repcap = 0.0;
        if (!(ls >> value >> executions) ||
            !try_double_from_hex(value, repcap))
            return false;
        CheckpointEntry &e = slot(index);
        e.has_repcap = true;
        e.repcap = repcap;
        e.repcap_executions = executions;
        return true;
    }
    if (keyword == "rank") {
        // Audit record; the ranking is recomputed on resume.
        std::string score;
        int rejected = 0;
        return static_cast<bool>(ls >> score >> rejected);
    }
    return false;
}

bool
SearchJournal::load()
{
    std::ifstream in(path_, std::ios::binary);
    if (!in)
        return false;

    // A crash while writing the very first append can tear the header
    // block itself. A torn header with nothing after it is equivalent
    // to "no journal yet": reset the file and start clean. A damaged
    // header with records following is real corruption.
    auto reset_torn_header = [&](const char *what) -> bool {
        std::string rest;
        if (std::getline(in, rest))
            elv::fatal("journal " + path_ + ": " + what);
        in.close();
        elv::warn("journal " + path_ + ": dropping header torn by an "
                  "interrupted write");
        std::filesystem::resize_file(path_, 0);
        return false;
    };

    std::string line;
    if (!std::getline(in, line))
        return false; // empty file: nothing journaled yet
    if (line != "elv-search-journal 2") {
        // A well-formed header of another version is not a torn write:
        // it is a journal left behind by an older (or newer) build.
        // Its record format may differ, so discard it and run the
        // search fresh rather than fail with a misleading
        // corruption error.
        if (line.rfind("elv-search-journal ", 0) == 0) {
            elv::warn("journal " + path_ + ": incompatible version '" +
                      line + "' (this build writes version 2); "
                      "discarding it and restarting the search fresh");
            in.close();
            std::filesystem::resize_file(path_, 0);
            return false;
        }
        return reset_torn_header("missing header");
    }
    if (!std::getline(in, line))
        return reset_torn_header("missing fingerprint");
    {
        std::istringstream ls(line);
        std::string keyword, hex;
        ls >> keyword >> hex;
        if (keyword != "fingerprint" || hex.size() != 16)
            return reset_torn_header("bad fingerprint line");
        const std::uint64_t seen =
            std::strtoull(hex.c_str(), nullptr, 16);
        if (seen != fingerprint_) {
            char expected[32];
            std::snprintf(expected, sizeof(expected), "%016llx",
                          static_cast<unsigned long long>(fingerprint_));
            std::string message =
                "journal " + path_ +
                " was written by a different search configuration "
                "(stored fingerprint " + hex + ", expected " +
                expected + "); refusing to resume from it";
            if (mismatch_hint_) {
                const std::string guess = mismatch_hint_(seen);
                if (!guess.empty())
                    message += "; " + guess;
            }
            elv::fatal(message);
        }
    }

    // A crash can tear the record in flight, so a malformed FINAL line
    // is an expected artifact: drop it (and truncate it away so later
    // loads stay clean). The per-record checksum makes "malformed"
    // exact — truncation at any byte offset fails verification, even
    // when the shortened fields would still lex as valid numbers. A
    // malformed line anywhere else is corruption.
    std::streampos line_start = in.tellg();
    std::streampos torn_at(-1);
    while (std::getline(in, line)) {
        // getline on the unterminated final line still extracts it.
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (!line.empty() &&
            !(strip_record_checksum(line) && parse_record(line))) {
            torn_at = line_start;
            if (std::getline(in, line))
                elv::fatal("journal " + path_ + ": corrupt record");
            break;
        }
        line_start = in.tellg();
    }
    in.close();
    if (torn_at >= std::streampos(0)) {
        elv::warn("journal " + path_ +
                  ": dropping record torn by an interrupted write");
        std::filesystem::resize_file(
            path_, static_cast<std::uintmax_t>(torn_at));
    }
    header_written_ = true;
    return !entries_.empty();
}

void
SearchJournal::append(const std::string &line, bool with_header)
{
    // Open-append-close per record: the line is on disk (and the
    // descriptor flushed) before the search advances, so a crash loses
    // at most the stage in flight.
    std::ofstream out(path_, std::ios::app);
    if (!out)
        elv::fatal("cannot open journal " + path_ + " for appending");
    if (with_header && !header_written_) {
        char hex[32];
        std::snprintf(hex, sizeof(hex), "%016llx",
                      static_cast<unsigned long long>(fingerprint_));
        out << "elv-search-journal 2\n";
        out << "fingerprint " << hex << "\n";
        header_written_ = true;
    }
    out << record_with_checksum(line) << "\n";
    out.flush();
    if (!out)
        elv::fatal("failed to append to journal " + path_);
}

void
SearchJournal::record_candidate(int index, const circ::Circuit &circuit)
{
    std::string line = circ::to_text_line(circuit);
    append("cand " + std::to_string(index) + " " + line, true);
    slot(index).circuit_line = std::move(line);
}

void
SearchJournal::record_cnr(int index, double cnr,
                          std::uint64_t executions, bool degraded,
                          std::uint64_t retries)
{
    append("cnr " + std::to_string(index) + " " + double_to_hex(cnr) +
               " " + std::to_string(executions) + " " +
               (degraded ? "1" : "0") + " " + std::to_string(retries),
           true);
    CheckpointEntry &e = slot(index);
    e.has_cnr = true;
    e.cnr = cnr;
    e.cnr_executions = executions;
    e.degraded = degraded;
    e.retries = retries;
}

void
SearchJournal::record_repcap(int index, double repcap,
                             std::uint64_t executions)
{
    append("repcap " + std::to_string(index) + " " +
               double_to_hex(repcap) + " " + std::to_string(executions),
           true);
    CheckpointEntry &e = slot(index);
    e.has_repcap = true;
    e.repcap = repcap;
    e.repcap_executions = executions;
}

void
SearchJournal::record_rank(int index, double score, bool rejected)
{
    append("rank " + std::to_string(index) + " " + double_to_hex(score) +
               " " + (rejected ? "1" : "0"),
           true);
}

} // namespace elv::core
