/**
 * @file
 * Topology- and noise-aware candidate circuit generation — Algorithm 1
 * of the paper (Sec. 4).
 *
 * Candidates are generated directly on a connected subgraph of the
 * target device, so every 2-qubit gate acts on a coupled pair and the
 * qubit mapping comes for free (no circuit-mapping co-search). Subgraph,
 * gate-placement and measurement choices are sampled from probability
 * distributions weighted by calibration data (readout error, T1/T2,
 * 2-qubit gate fidelity) rather than argmax-selected, to keep candidate
 * diversity (following the classical NAS practice the paper cites).
 */
#pragma once

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "device/device.hpp"

namespace elv::core {

/** How a candidate's data embedding is chosen (Sec. 9.3 / Fig. 10). */
enum class EmbeddingMode {
    /** Random designation of rotation gates (the Elivagar default). */
    Searched,
    /** Fixed angle-embedding prefix (RX per qubit, re-uploaded). */
    FixedAngle,
    /** Fixed IQP-embedding prefix. */
    FixedIQP,
};

/** Circuit-shape configuration (Theta_conf in Algorithm 1). */
struct CandidateConfig
{
    /** Subgraph size (qubits used by the circuit). */
    int num_qubits = 4;
    /** Variational parameter budget. */
    int num_params = 20;
    /** Number of data-embedding gates. */
    int num_embeds = 4;
    /** Measured qubit count. */
    int num_meas = 1;
    /** Input feature dimensionality. */
    int num_features = 4;
    /** Embedding strategy. */
    EmbeddingMode embedding = EmbeddingMode::Searched;
    /**
     * When false, generation ignores calibration data (uniform
     * subgraph/gate/measurement choices) — the "device-aware but
     * noise-unaware" ablation arm of Fig. 9. Topology-awareness is
     * always kept (that is what makes the circuit executable).
     */
    bool noise_aware = true;
    /** Candidate subgraphs drawn before the weighted pick (line 1). */
    int subgraph_pool = 8;
};

/**
 * Generate one device-native candidate circuit (qubit labels are
 * physical device qubits; 2-qubit gates act only on coupled pairs).
 * The circuit measures `num_meas` qubits and embeds `num_features`
 * input dimensions.
 */
circ::Circuit generate_candidate(const dev::Device &device,
                                 const CandidateConfig &config,
                                 elv::Rng &rng);

/**
 * Generate a device-unaware random circuit with the same gate budget
 * (fully-connected assumption), for the Table 5 comparison: such
 * circuits must be SABRE-routed before execution.
 */
circ::Circuit generate_device_unaware(const CandidateConfig &config,
                                      elv::Rng &rng);

} // namespace elv::core
