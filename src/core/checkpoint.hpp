/**
 * @file
 * Crash-safe journaling for the Elivagar search.
 *
 * The search appends one line per completed per-candidate stage to a
 * checkpoint file (flushed immediately, append-only), so a crash —
 * process kill, backend meltdown, injected CrashError — loses at most
 * the stage in flight. A resumed search with the same configuration
 * replays the journal: already-evaluated candidates keep their recorded
 * CNR/RepCap values (and execution/retry accounting), unevaluated ones
 * are computed, and because every stage draws from a per-candidate
 * seeded RNG the final ranking is bit-identical to an uninterrupted
 * run.
 *
 * File format (line-oriented, hexfloat for exact double round-trips;
 * every record carries a trailing ~<hex> FNV checksum of its body):
 *
 *   elv-search-journal 2
 *   fingerprint <hex64>          # hash of the search configuration
 *   cand <idx> <escaped circuit> ~<sum> # written after generation
 *   cnr <idx> <hexfloat> <execs> <degraded> <retries> ~<sum>
 *   repcap <idx> <hexfloat> <execs> ~<sum>
 *   rank <idx> <score hexfloat> <rejected> ~<sum> # audit, not replayed
 *
 * The checksum is what makes torn-write detection exact: a record
 * truncated at *any* byte offset — even one whose shortened fields
 * still lex as valid numbers ("15" torn to "1") — fails verification.
 * A bad FINAL record is an expected crash artifact and is dropped
 * (that candidate's stage simply re-runs on resume); a bad record
 * anywhere else is real corruption and stays fatal.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "circuit/circuit.hpp"

namespace elv::core {

/** Journaled per-candidate evaluation state. */
struct CheckpointEntry
{
    /** Circuit text (single-line escaped form), "" until journaled. */
    std::string circuit_line;
    bool has_cnr = false;
    double cnr = 0.0;
    std::uint64_t cnr_executions = 0;
    bool degraded = false;
    std::uint64_t retries = 0;
    bool has_repcap = false;
    double repcap = 0.0;
    std::uint64_t repcap_executions = 0;
};

/** Append-only search journal with resume support. */
class SearchJournal
{
  public:
    /**
     * @param path journal file (created on first record)
     * @param fingerprint configuration hash; a journal written under a
     *        different configuration is rejected with fatal(), never
     *        silently merged
     */
    SearchJournal(std::string path, std::uint64_t fingerprint);

    /**
     * Load an existing journal. Returns true when entries were
     * recovered; false when the file does not exist yet. fatal() on a
     * malformed file or a fingerprint mismatch; the mismatch message
     * reports both fingerprints (stored and expected) plus, when a
     * hint callback is set, which configuration field likely changed.
     */
    bool load();

    /**
     * Diagnostic callback consulted on a fingerprint mismatch: given
     * the fingerprint stored in the journal, return a human-readable
     * guess at which config field changed ("" = no guess). See
     * fingerprint_mismatch_hint() in search.hpp for the standard
     * implementation; set before load().
     */
    void
    set_mismatch_hint(std::function<std::string(std::uint64_t)> hint)
    {
        mismatch_hint_ = std::move(hint);
    }

    /** Entry for a candidate, or null when nothing is journaled. */
    const CheckpointEntry *entry(int index) const;

    /** @name Stage records (append + flush immediately) @{ */
    void record_candidate(int index, const circ::Circuit &circuit);
    void record_cnr(int index, double cnr, std::uint64_t executions,
                    bool degraded, std::uint64_t retries);
    void record_repcap(int index, double repcap,
                       std::uint64_t executions);
    void record_rank(int index, double score, bool rejected);
    /** @} */

    /** Number of candidates with at least the generation stage. */
    std::size_t size() const { return entries_.size(); }

  private:
    void append(const std::string &line, bool with_header);
    /** Parse one record line; false = malformed (e.g. torn write). */
    bool parse_record(const std::string &line);
    CheckpointEntry &slot(int index);

    std::string path_;
    std::uint64_t fingerprint_;
    bool header_written_ = false;
    std::map<int, CheckpointEntry> entries_;
    std::function<std::string(std::uint64_t)> mismatch_hint_;
};

/** Exact double <-> text helpers (hexfloat, bit-preserving). */
std::string double_to_hex(double value);
double double_from_hex(const std::string &text);
/** Non-throwing parse; false on malformed text (torn-record path). */
bool try_double_from_hex(const std::string &text, double &value);

/** @name Checksummed append-only record lines
 * Shared by the search journal and the server's job manifest: `body`
 * is stored as "<body> ~<hex>" where <hex> is a 64-bit FNV-1a hash of
 * the body, so a line truncated or damaged at any byte offset is
 * detected on load.
 * @{ */
/** Render `body` with its trailing checksum token appended. */
std::string record_with_checksum(const std::string &body);
/**
 * Verify and strip the checksum token of `line` in place. Returns
 * false (leaving `line` unspecified) when the token is missing or
 * does not match the body — i.e. the record is torn or corrupt.
 */
bool strip_record_checksum(std::string &line);
/** @} */

} // namespace elv::core
