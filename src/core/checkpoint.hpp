/**
 * @file
 * Crash-safe journaling for the Elivagar search.
 *
 * The search appends one line per completed per-candidate stage to a
 * checkpoint file (flushed immediately, append-only), so a crash —
 * process kill, backend meltdown, injected CrashError — loses at most
 * the stage in flight. A resumed search with the same configuration
 * replays the journal: already-evaluated candidates keep their recorded
 * CNR/RepCap values (and execution/retry accounting), unevaluated ones
 * are computed, and because every stage draws from a per-candidate
 * seeded RNG the final ranking is bit-identical to an uninterrupted
 * run.
 *
 * File format (line-oriented, hexfloat for exact double round-trips):
 *
 *   elv-search-journal 1
 *   fingerprint <hex64>          # hash of the search configuration
 *   cand <idx> <escaped circuit> # written after generation
 *   cnr <idx> <hexfloat> <execs> <degraded> <retries>
 *   repcap <idx> <hexfloat> <execs>
 *   rank <idx> <score hexfloat> <rejected> # audit only, not replayed
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "circuit/circuit.hpp"

namespace elv::core {

/** Journaled per-candidate evaluation state. */
struct CheckpointEntry
{
    /** Circuit text (single-line escaped form), "" until journaled. */
    std::string circuit_line;
    bool has_cnr = false;
    double cnr = 0.0;
    std::uint64_t cnr_executions = 0;
    bool degraded = false;
    std::uint64_t retries = 0;
    bool has_repcap = false;
    double repcap = 0.0;
    std::uint64_t repcap_executions = 0;
};

/** Append-only search journal with resume support. */
class SearchJournal
{
  public:
    /**
     * @param path journal file (created on first record)
     * @param fingerprint configuration hash; a journal written under a
     *        different configuration is rejected with fatal(), never
     *        silently merged
     */
    SearchJournal(std::string path, std::uint64_t fingerprint);

    /**
     * Load an existing journal. Returns true when entries were
     * recovered; false when the file does not exist yet. fatal() on a
     * malformed file or a fingerprint mismatch.
     */
    bool load();

    /** Entry for a candidate, or null when nothing is journaled. */
    const CheckpointEntry *entry(int index) const;

    /** @name Stage records (append + flush immediately) @{ */
    void record_candidate(int index, const circ::Circuit &circuit);
    void record_cnr(int index, double cnr, std::uint64_t executions,
                    bool degraded, std::uint64_t retries);
    void record_repcap(int index, double repcap,
                       std::uint64_t executions);
    void record_rank(int index, double score, bool rejected);
    /** @} */

    /** Number of candidates with at least the generation stage. */
    std::size_t size() const { return entries_.size(); }

  private:
    void append(const std::string &line, bool with_header);
    /** Parse one record line; false = malformed (e.g. torn write). */
    bool parse_record(const std::string &line);
    CheckpointEntry &slot(int index);

    std::string path_;
    std::uint64_t fingerprint_;
    bool header_written_ = false;
    std::map<int, CheckpointEntry> entries_;
};

/** Exact double <-> text helpers (hexfloat, bit-preserving). */
std::string double_to_hex(double value);
double double_from_hex(const std::string &text);

} // namespace elv::core
