/**
 * @file
 * Clifford Noise Resilience (CNR) — the paper's fidelity predictor
 * (Sec. 5, Eqs. 1-2).
 *
 * CNR(C) is the mean fidelity of M Clifford replicas of C, where the
 * fidelity of a replica is 1 - TVD between its noisy and noiseless
 * output distributions. Because replicas are Clifford, the noiseless
 * side is efficiently computable (stabilizer simulation) and the noisy
 * side costs M device executions — constant in the dataset size, which
 * is what makes early rejection cheap compared to validation-set
 * performance evaluation.
 *
 * Replica executions are routed through the exec layer: by default a
 * plain executor matching `CnrOptions::backend`, or — when the caller
 * supplies one — a resilient executor with retry/backoff and a
 * degradation ladder, in which case the result records whether any
 * replica was serviced by a fallback backend.
 */
#pragma once

#include <cstdint>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "device/device.hpp"
#include "exec/executor.hpp"

namespace elv::core {

/** Which backend plays the role of the noisy device. */
enum class CnrBackend {
    /** Exact density-matrix noisy simulation (small circuits). */
    Density,
    /** Stochastic-Pauli stabilizer sampling (scales to any size). */
    Stabilizer,
};

/** The exec-layer backend corresponding to a CnrBackend. */
exec::BackendKind cnr_backend_kind(CnrBackend backend);

/** CNR evaluation options (paper defaults: 16-32 replicas). */
struct CnrOptions
{
    int num_replicas = 16;
    CnrBackend backend = CnrBackend::Density;
    /** Shots per replica for the stabilizer backend. */
    int shots = 2048;
    /** Multiplies device error rates (ablation knob). */
    double noise_scale = 1.0;
    /**
     * Amplitude precision of the density backend. Float32Proxy halves
     * the memory traffic of every superoperator pass; CNR is a ranking
     * proxy, and the ranking is preserved (see sim/precision.hpp and
     * the ranking-equivalence tests). Ignored by the stabilizer
     * backend and by caller-supplied executors.
     */
    sim::Precision precision = sim::Precision::Float64;
    /**
     * Route executions through this executor instead of building a
     * plain one from `backend` (non-owning; e.g. a ResilientExecutor
     * with fault injection / degradation). Null = plain execution.
     */
    exec::Executor *executor = nullptr;
    /**
     * Elide ops outside the measurement lightcone from each replica
     * before executing it (lint/dataflow.hpp). The replica is pruned
     * AFTER construction — make_clifford_replica draws from the RNG
     * per parametric gate, so pruning the source circuit first would
     * shift every subsequent stream. Dead ops are traced out of the
     * measured marginal, so the density backend's fidelity is
     * mathematically unchanged (bit-identical candidate *rankings*;
     * scores differ only in floating-point reassociation) while the
     * per-replica simulation cost drops with the dead-op count. The
     * stabilizer backend additionally samples per-gate Pauli noise, so
     * its shot noise re-randomizes — distributions stay statistically
     * identical. Fingerprinted: toggling it invalidates checkpoints.
     */
    bool prune_dead_structure = false;
};

/** CNR value plus cost accounting. */
struct CnrResult
{
    double cnr = 0.0;
    /** Device-style circuit executions consumed (= replicas). */
    std::uint64_t circuit_executions = 0;
    /** True when any replica was serviced by a fallback backend. */
    bool degraded = false;
    /** Retries spent across all replica executions. */
    std::uint64_t retries = 0;
};

/**
 * Compute CNR for a hardware-native circuit (qubit labels are physical
 * device qubits).
 */
CnrResult clifford_noise_resilience(const circ::Circuit &circuit,
                                    const dev::Device &device,
                                    elv::Rng &rng,
                                    const CnrOptions &options = {});

} // namespace elv::core
