/**
 * @file
 * Clifford Noise Resilience (CNR) — the paper's fidelity predictor
 * (Sec. 5, Eqs. 1-2).
 *
 * CNR(C) is the mean fidelity of M Clifford replicas of C, where the
 * fidelity of a replica is 1 - TVD between its noisy and noiseless
 * output distributions. Because replicas are Clifford, the noiseless
 * side is efficiently computable (stabilizer simulation) and the noisy
 * side costs M device executions — constant in the dataset size, which
 * is what makes early rejection cheap compared to validation-set
 * performance evaluation.
 */
#pragma once

#include <cstdint>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "device/device.hpp"

namespace elv::core {

/** Which backend plays the role of the noisy device. */
enum class CnrBackend {
    /** Exact density-matrix noisy simulation (small circuits). */
    Density,
    /** Stochastic-Pauli stabilizer sampling (scales to any size). */
    Stabilizer,
};

/** CNR evaluation options (paper defaults: 16-32 replicas). */
struct CnrOptions
{
    int num_replicas = 16;
    CnrBackend backend = CnrBackend::Density;
    /** Shots per replica for the stabilizer backend. */
    int shots = 2048;
    /** Multiplies device error rates (ablation knob). */
    double noise_scale = 1.0;
};

/** CNR value plus cost accounting. */
struct CnrResult
{
    double cnr = 0.0;
    /** Device-style circuit executions consumed (= replicas). */
    std::uint64_t circuit_executions = 0;
};

/**
 * Compute CNR for a hardware-native circuit (qubit labels are physical
 * device qubits).
 */
CnrResult clifford_noise_resilience(const circ::Circuit &circuit,
                                    const dev::Device &device,
                                    elv::Rng &rng,
                                    const CnrOptions &options = {});

} // namespace elv::core
