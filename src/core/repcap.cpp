#include "core/repcap.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/statistics.hpp"
#include "common/validate.hpp"
#include "lint/dataflow.hpp"
#include "obs/metrics.hpp"
#include "sim/fusion.hpp"
#include "sim/statevector.hpp"
#include "sim/unitaries.hpp"

namespace elv::core {

namespace {

/**
 * The whole estimator, templated on amplitude precision. Only the
 * prepared/rotated states live in T; random draws, TVD similarities and
 * the Frobenius reduction are double either way, so the two precisions
 * consume identical RNG streams and differ only in amplitude rounding.
 */
template <typename T>
RepCapResult
repcap_impl(const circ::Circuit &circuit, const qml::Dataset &data,
            elv::Rng &rng, const RepCapOptions &options)
{
    data.check();
    ELV_REQUIRE(options.samples_per_class >= 1 &&
                    options.param_inits >= 1 && options.num_bases >= 1,
                "bad RepCap options");
    ELV_REQUIRE(!circuit.measured().empty(), "circuit measures nothing");

    // Optional dead-structure prune. prune_to_lightcone preserves the
    // declared parameter count, so the theta_t draws below (sized by
    // num_params()) consume the same RNG stream either way; it happens
    // before compaction so qubits freed by elided ops compact away too.
    // No RNG is consumed before this point, so pruning the source (not
    // a per-iteration copy) is stream-safe here, unlike in CNR.
    circ::Circuit pruned = circuit;
    if (options.prune_dead_structure) {
        std::size_t elided = 0;
        pruned = lint::prune_to_lightcone(circuit, &elided);
        if (elided > 0)
            ELV_METRIC_COUNT_N("lint.ops_elided",
                               static_cast<std::uint64_t>(elided));
    }

    std::vector<int> kept;
    const circ::Circuit local = pruned.compacted(kept);
    const auto &measured = local.measured();

    // Select d_c samples per class (indices grouped by class).
    const auto chosen =
        qml::sample_per_class(data, options.samples_per_class, rng);
    const std::size_t d = chosen.size();
    ELV_REQUIRE(d >= 2, "need at least two samples for RepCap");

    // R_ref(i, j) = 1 iff labels match.
    // Accumulate R_C over parameter inits and random bases.
    std::vector<double> r_c(d * d, 0.0);
    RepCapResult result;

    std::vector<sim::BasicStateVector<T>> states;
    states.reserve(d);

    // One candidate circuit, d x param_inits executions: compile the
    // fused program once (no cache — candidates are one-shot here).
    const sim::FusedProgram program = sim::FusedProgram::compile(local);

    for (int t = 0; t < options.param_inits; ++t) {
        // Random parameter vector theta_t (uniformly sampled angles).
        std::vector<double> params(
            static_cast<std::size_t>(local.num_params()));
        for (auto &p : params)
            p = rng.uniform(-M_PI, M_PI);

        // Prepare the d output states once per init.
        states.clear();
        for (std::size_t s = 0; s < d; ++s) {
            sim::BasicStateVector<T> psi(local.num_qubits());
            program.run(psi, params, data.samples[chosen[s]]);
            states.push_back(std::move(psi));
            ++result.circuit_executions;
        }

        for (int k = 0; k < options.num_bases; ++k) {
            // Random measurement basis: a random U3 on each measured
            // qubit (the alpha array of Algorithm 2).
            std::vector<sim::Mat2> basis;
            basis.reserve(measured.size());
            for (std::size_t m = 0; m < measured.size(); ++m) {
                const std::array<double, 3> angles = {
                    rng.uniform(0.0, M_PI),
                    rng.uniform(0.0, 2.0 * M_PI),
                    rng.uniform(0.0, 2.0 * M_PI)};
                basis.push_back(
                    sim::gate_matrix_1q(circ::GateKind::U3, angles));
            }

            // Outcome distribution of each state in this basis.
            std::vector<std::vector<double>> dists;
            dists.reserve(d);
            for (const auto &psi : states) {
                sim::BasicStateVector<T> rotated = psi;
                for (std::size_t m = 0; m < measured.size(); ++m)
                    rotated.apply_1q(basis[m], measured[m]);
                auto probs = rotated.probabilities(measured);
                // Guard the similarity estimate against numerical decay
                // of the rotated state (NaN poisons the whole matrix).
                elv::validate_distribution(
                    probs, elv::DistributionPolicy::Renormalize,
                    "RepCap randomized measurement");
                dists.push_back(std::move(probs));
            }

            for (std::size_t i = 0; i < d; ++i) {
                r_c[i * d + i] += 1.0;
                for (std::size_t j = i + 1; j < d; ++j) {
                    const double sim_ij =
                        1.0 - elv::total_variation_distance(dists[i],
                                                            dists[j]);
                    r_c[i * d + j] += sim_ij;
                    r_c[j * d + i] += sim_ij;
                }
            }
        }
    }

    const double norm = 1.0 / (static_cast<double>(options.param_inits) *
                               static_cast<double>(options.num_bases));
    double frob2 = 0.0;
    for (std::size_t i = 0; i < d; ++i) {
        for (std::size_t j = 0; j < d; ++j) {
            const double ref =
                data.labels[chosen[i]] == data.labels[chosen[j]] ? 1.0
                                                                 : 0.0;
            const double diff = r_c[i * d + j] * norm - ref;
            frob2 += diff * diff;
        }
    }
    result.repcap = 1.0 - frob2 / static_cast<double>(d * d);
    return result;
}

} // namespace

RepCapResult
representational_capacity(const circ::Circuit &circuit,
                          const qml::Dataset &data, elv::Rng &rng,
                          const RepCapOptions &options)
{
    if (options.precision == sim::Precision::Float32Proxy)
        return repcap_impl<float>(circuit, data, rng, options);
    return repcap_impl<double>(circuit, data, rng, options);
}

} // namespace elv::core
