/**
 * @file
 * Structured run report for an Elivagar search: one JSON document that
 * aggregates the search configuration, per-candidate CNR/RepCap/score
 * records, the per-phase wall-clock breakdown, retry/fault/degradation
 * tallies and a snapshot of the metrics registry (kernel-mix counters,
 * pool activity, backoff histogram). Tallies are copied from the
 * SearchResult itself, so the report always matches what the search
 * returned — it is a serialization, not a second accounting.
 */
#pragma once

#include <string>

#include "core/search.hpp"

namespace elv::core {

/**
 * Render the run report as a JSON document. Embeds the build version
 * and an ISO-8601 UTC timestamp; the metrics section reflects the
 * global registry at call time (all zeros unless `--metrics`-style
 * collection was enabled for the run).
 */
std::string run_report_json(const ElivagarConfig &config,
                            const SearchResult &result);

/**
 * Write run_report_json() to `path`. Returns false (with a warning)
 * when the file cannot be written.
 */
bool write_run_report(const std::string &path,
                      const ElivagarConfig &config,
                      const SearchResult &result);

} // namespace elv::core
