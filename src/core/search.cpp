#include "core/search.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "circuit/serialize.hpp"
#include "common/logging.hpp"
#include "core/checkpoint.hpp"
#include "exec/resilient.hpp"

namespace elv::core {

namespace {

/** splitmix64 finalizer — decorrelates structured seed inputs. */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e9b5ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * Independent RNG seed per (stage, candidate). Per-candidate streams
 * make evaluations order-independent, which is what lets a resumed
 * search skip journaled candidates yet reproduce the uninterrupted
 * run's remaining values bit-exactly.
 */
std::uint64_t
stage_seed(std::uint64_t seed, std::uint64_t stage, std::uint64_t index)
{
    return mix64(seed ^ mix64(stage) ^ mix64(index + 0x5eedULL));
}

/** Mix one value into an FNV-1a style fingerprint. */
void
fp_mix(std::uint64_t &h, std::uint64_t value)
{
    h ^= mix64(value);
    h *= 1099511628211ULL;
}

void
fp_mix_double(std::uint64_t &h, double value)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    __builtin_memcpy(&bits, &value, sizeof(bits));
    fp_mix(h, bits);
}

} // namespace

std::uint64_t
config_fingerprint(const ElivagarConfig &config)
{
    std::uint64_t h = 1469598103934665603ULL;
    fp_mix(h, config.seed);
    fp_mix(h, static_cast<std::uint64_t>(config.num_candidates));
    fp_mix(h, static_cast<std::uint64_t>(config.candidate.num_qubits));
    fp_mix(h, static_cast<std::uint64_t>(config.candidate.num_params));
    fp_mix(h, static_cast<std::uint64_t>(config.candidate.num_embeds));
    fp_mix(h, static_cast<std::uint64_t>(config.candidate.num_meas));
    fp_mix(h, static_cast<std::uint64_t>(config.candidate.num_features));
    fp_mix(h, static_cast<std::uint64_t>(config.candidate.embedding));
    fp_mix(h, config.candidate.noise_aware ? 1 : 0);
    fp_mix(h, static_cast<std::uint64_t>(config.candidate.subgraph_pool));
    fp_mix(h, static_cast<std::uint64_t>(config.cnr.num_replicas));
    fp_mix(h, static_cast<std::uint64_t>(config.cnr.backend));
    fp_mix(h, static_cast<std::uint64_t>(config.cnr.shots));
    fp_mix_double(h, config.cnr.noise_scale);
    fp_mix(h, static_cast<std::uint64_t>(config.repcap.samples_per_class));
    fp_mix(h, static_cast<std::uint64_t>(config.repcap.param_inits));
    fp_mix(h, static_cast<std::uint64_t>(config.repcap.num_bases));
    fp_mix_double(h, config.cnr_threshold);
    fp_mix_double(h, config.keep_fraction);
    fp_mix_double(h, config.alpha_cnr);
    fp_mix(h, config.use_cnr ? 1 : 0);
    return h;
}

SearchResult
elivagar_search(const dev::Device &device, const qml::Dataset &train,
                const ElivagarConfig &config)
{
    ELV_REQUIRE(config.num_candidates >= 1, "need at least one candidate");
    ELV_REQUIRE(config.keep_fraction > 0.0 && config.keep_fraction <= 1.0,
                "bad keep fraction");
    train.check();
    device.validate();

    SearchResult result;

    // Crash-safe journal: replay completed stages, append new ones.
    std::unique_ptr<SearchJournal> journal;
    if (!config.resilience.checkpoint_path.empty()) {
        journal = std::make_unique<SearchJournal>(
            config.resilience.checkpoint_path,
            config_fingerprint(config));
        result.resumed = journal->load();
    }

    // Resilient executor shared by the whole CNR stage: retry counters,
    // the degradation ladder, and the simulated deadline budget span
    // the run, not a single candidate.
    std::unique_ptr<exec::ResilientExecutor> executor;
    CnrOptions cnr_options = config.cnr;
    if (config.resilience.enabled) {
        executor = std::make_unique<exec::ResilientExecutor>(
            device, cnr_backend_kind(config.cnr.backend),
            config.cnr.shots, config.cnr.noise_scale,
            config.resilience.retry, config.resilience.faults,
            stage_seed(config.seed, 0xe8ec, 0));
        cnr_options.executor = executor.get();
    }

    // Step 1: candidate generation. Cheap and fully deterministic in
    // the seed, so a resumed search regenerates the pool and verifies
    // it against the journal instead of trusting the file blindly.
    elv::Rng gen_rng(config.seed ^ 0xe11a6a42ULL);
    for (int n = 0; n < config.num_candidates; ++n) {
        CandidateRecord record;
        record.circuit = generate_candidate(device, config.candidate,
                                            gen_rng);
        if (journal) {
            const CheckpointEntry *entry = journal->entry(n);
            if (entry && !entry->circuit_line.empty()) {
                if (entry->circuit_line !=
                    circ::to_text_line(record.circuit))
                    elv::fatal(
                        "journal " + config.resilience.checkpoint_path +
                        ": candidate " + std::to_string(n) +
                        " does not match the regenerated pool; the "
                        "journal belongs to a different run");
            } else {
                journal->record_candidate(n, record.circuit);
            }
        }
        result.candidates.push_back(std::move(record));
    }

    // Step 2: CNR for every candidate (replayed from the journal where
    // possible; each candidate draws from its own seeded stream).
    if (config.use_cnr) {
        for (int n = 0; n < config.num_candidates; ++n) {
            auto &record =
                result.candidates[static_cast<std::size_t>(n)];
            const CheckpointEntry *entry =
                journal ? journal->entry(n) : nullptr;
            if (entry && entry->has_cnr) {
                record.cnr = entry->cnr;
                record.degraded = entry->degraded;
                record.retries = entry->retries;
                result.cnr_executions += entry->cnr_executions;
                continue;
            }
            elv::Rng cnr_rng(stage_seed(config.seed, 0xc14, n));
            const CnrResult cnr = clifford_noise_resilience(
                record.circuit, device, cnr_rng, cnr_options);
            record.cnr = cnr.cnr;
            record.degraded = cnr.degraded;
            record.retries = cnr.retries;
            result.cnr_executions += cnr.circuit_executions;
            if (journal)
                journal->record_cnr(n, cnr.cnr, cnr.circuit_executions,
                                    cnr.degraded, cnr.retries);
        }

        // Step 3: early rejection — below threshold or outside the top
        // keep_fraction.
        std::vector<double> cnrs;
        cnrs.reserve(result.candidates.size());
        for (const auto &record : result.candidates)
            cnrs.push_back(record.cnr);
        std::sort(cnrs.begin(), cnrs.end(), std::greater<>());
        const std::size_t keep_count = std::max<std::size_t>(
            1, static_cast<std::size_t>(std::floor(
                   config.keep_fraction *
                   static_cast<double>(result.candidates.size()))));
        const double rank_cutoff = cnrs[keep_count - 1];
        for (auto &record : result.candidates)
            record.rejected_by_cnr =
                record.cnr < config.cnr_threshold ||
                record.cnr < rank_cutoff;
        // Never reject everything: keep the single most resilient
        // candidate even when all CNRs fall below the threshold.
        if (std::all_of(result.candidates.begin(),
                        result.candidates.end(),
                        [](const CandidateRecord &r) {
                            return r.rejected_by_cnr;
                        })) {
            auto best = std::max_element(
                result.candidates.begin(), result.candidates.end(),
                [](const CandidateRecord &a, const CandidateRecord &b) {
                    return a.cnr < b.cnr;
                });
            best->rejected_by_cnr = false;
        }
    }

    // Step 4: RepCap for the survivors only (per-candidate streams,
    // replayed from the journal where possible).
    for (int n = 0; n < config.num_candidates; ++n) {
        auto &record = result.candidates[static_cast<std::size_t>(n)];
        if (record.rejected_by_cnr)
            continue;
        ++result.survivors;
        const CheckpointEntry *entry =
            journal ? journal->entry(n) : nullptr;
        if (entry && entry->has_repcap) {
            record.repcap = entry->repcap;
            result.repcap_executions += entry->repcap_executions;
            continue;
        }
        elv::Rng rc_rng(stage_seed(config.seed, 0x2e9ca9, n));
        const RepCapResult rc = representational_capacity(
            record.circuit, train, rc_rng, config.repcap);
        record.repcap = rc.repcap;
        result.repcap_executions += rc.circuit_executions;
        if (journal)
            journal->record_repcap(n, rc.repcap, rc.circuit_executions);
    }

    // Step 5: composite score and final selection (Eq. 7).
    const CandidateRecord *best = nullptr;
    for (int n = 0; n < config.num_candidates; ++n) {
        auto &record = result.candidates[static_cast<std::size_t>(n)];
        if (record.degraded)
            ++result.degraded_candidates;
        if (record.rejected_by_cnr)
            continue;
        record.score = std::pow(std::max(record.cnr, 0.0),
                                config.alpha_cnr) *
                       record.repcap;
        if (!best || record.score > best->score)
            best = &record;
        if (journal)
            journal->record_rank(n, record.score,
                                 record.rejected_by_cnr);
    }
    ELV_REQUIRE(best != nullptr, "no surviving candidate");
    result.best_circuit = best->circuit;
    result.best_score = best->score;

    if (executor) {
        result.exec_counters = executor->counters();
        result.fault_counters = executor->injected();
        result.simulated_wait_ms = executor->elapsed_ms();
    }
    return result;
}

} // namespace elv::core
