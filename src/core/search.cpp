#include "core/search.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace elv::core {

SearchResult
elivagar_search(const dev::Device &device, const qml::Dataset &train,
                const ElivagarConfig &config)
{
    ELV_REQUIRE(config.num_candidates >= 1, "need at least one candidate");
    ELV_REQUIRE(config.keep_fraction > 0.0 && config.keep_fraction <= 1.0,
                "bad keep fraction");
    train.check();

    elv::Rng rng(config.seed ^ 0xe11a6a42ULL);
    SearchResult result;

    // Step 1: candidate generation.
    for (int n = 0; n < config.num_candidates; ++n) {
        CandidateRecord record;
        record.circuit = generate_candidate(device, config.candidate, rng);
        result.candidates.push_back(std::move(record));
    }

    // Step 2: CNR for every candidate.
    if (config.use_cnr) {
        for (auto &record : result.candidates) {
            const CnrResult cnr = clifford_noise_resilience(
                record.circuit, device, rng, config.cnr);
            record.cnr = cnr.cnr;
            result.cnr_executions += cnr.circuit_executions;
        }

        // Step 3: early rejection — below threshold or outside the top
        // keep_fraction.
        std::vector<double> cnrs;
        cnrs.reserve(result.candidates.size());
        for (const auto &record : result.candidates)
            cnrs.push_back(record.cnr);
        std::sort(cnrs.begin(), cnrs.end(), std::greater<>());
        const std::size_t keep_count = std::max<std::size_t>(
            1, static_cast<std::size_t>(std::floor(
                   config.keep_fraction *
                   static_cast<double>(result.candidates.size()))));
        const double rank_cutoff = cnrs[keep_count - 1];
        for (auto &record : result.candidates)
            record.rejected_by_cnr =
                record.cnr < config.cnr_threshold ||
                record.cnr < rank_cutoff;
        // Never reject everything: keep the single most resilient
        // candidate even when all CNRs fall below the threshold.
        if (std::all_of(result.candidates.begin(),
                        result.candidates.end(),
                        [](const CandidateRecord &r) {
                            return r.rejected_by_cnr;
                        })) {
            auto best = std::max_element(
                result.candidates.begin(), result.candidates.end(),
                [](const CandidateRecord &a, const CandidateRecord &b) {
                    return a.cnr < b.cnr;
                });
            best->rejected_by_cnr = false;
        }
    }

    // Step 4: RepCap for the survivors only.
    for (auto &record : result.candidates) {
        if (record.rejected_by_cnr)
            continue;
        ++result.survivors;
        const RepCapResult rc = representational_capacity(
            record.circuit, train, rng, config.repcap);
        record.repcap = rc.repcap;
        result.repcap_executions += rc.circuit_executions;
    }

    // Step 5: composite score and final selection (Eq. 7).
    const CandidateRecord *best = nullptr;
    for (auto &record : result.candidates) {
        if (record.rejected_by_cnr)
            continue;
        record.score = std::pow(std::max(record.cnr, 0.0),
                                config.alpha_cnr) *
                       record.repcap;
        if (!best || record.score > best->score)
            best = &record;
    }
    ELV_REQUIRE(best != nullptr, "no surviving candidate");
    result.best_circuit = best->circuit;
    result.best_score = best->score;
    return result;
}

} // namespace elv::core
