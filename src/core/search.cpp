#include "core/search.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <mutex>

#include "circuit/serialize.hpp"
#include "common/logging.hpp"
#include "core/checkpoint.hpp"
#include "exec/resilient.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"

namespace elv::core {

namespace {

/** Seconds elapsed since `start` (phase-timing rollups). */
double
seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** CNR-value histogram edges (scores live in [0, 1]). */
const std::vector<double> &
cnr_edges()
{
    static const std::vector<double> edges{0.1, 0.2, 0.3, 0.4, 0.5,
                                           0.6, 0.7, 0.8, 0.9, 1.0};
    return edges;
}

/**
 * RAII phase rollup: opens a "phase.<name>" trace span and, on exit,
 * appends the phase's wall-clock to the result's timing breakdown.
 */
class PhaseScope
{
  public:
    PhaseScope(const char *name, SearchResult &result)
        : name_(name), result_(result),
          span_(std::string("phase.") + name, "search"),
          start_(std::chrono::steady_clock::now())
    {
    }

    ~PhaseScope()
    {
        result_.phase_timings.push_back({name_, seconds_since(start_)});
    }

    PhaseScope(const PhaseScope &) = delete;
    PhaseScope &operator=(const PhaseScope &) = delete;

  private:
    const char *name_;
    SearchResult &result_;
    obs::TraceScope span_;
    std::chrono::steady_clock::time_point start_;
};

/** splitmix64 finalizer — decorrelates structured seed inputs. */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e9b5ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * Independent RNG seed per (stage, candidate). Per-candidate streams
 * make evaluations order-independent, which is what lets a resumed
 * search skip journaled candidates yet reproduce the uninterrupted
 * run's remaining values bit-exactly.
 */
std::uint64_t
stage_seed(std::uint64_t seed, std::uint64_t stage, std::uint64_t index)
{
    return mix64(seed ^ mix64(stage) ^ mix64(index + 0x5eedULL));
}

/** Mix one value into an FNV-1a style fingerprint. */
void
fp_mix(std::uint64_t &h, std::uint64_t value)
{
    h ^= mix64(value);
    h *= 1099511628211ULL;
}

void
fp_mix_double(std::uint64_t &h, double value)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    __builtin_memcpy(&bits, &value, sizeof(bits));
    fp_mix(h, bits);
}

} // namespace

std::uint64_t
config_fingerprint(const ElivagarConfig &config)
{
    std::uint64_t h = 1469598103934665603ULL;
    fp_mix(h, config.seed);
    fp_mix(h, static_cast<std::uint64_t>(config.num_candidates));
    fp_mix(h, static_cast<std::uint64_t>(config.candidate.num_qubits));
    fp_mix(h, static_cast<std::uint64_t>(config.candidate.num_params));
    fp_mix(h, static_cast<std::uint64_t>(config.candidate.num_embeds));
    fp_mix(h, static_cast<std::uint64_t>(config.candidate.num_meas));
    fp_mix(h, static_cast<std::uint64_t>(config.candidate.num_features));
    fp_mix(h, static_cast<std::uint64_t>(config.candidate.embedding));
    fp_mix(h, config.candidate.noise_aware ? 1 : 0);
    fp_mix(h, static_cast<std::uint64_t>(config.candidate.subgraph_pool));
    fp_mix(h, static_cast<std::uint64_t>(config.cnr.num_replicas));
    fp_mix(h, static_cast<std::uint64_t>(config.cnr.backend));
    fp_mix(h, static_cast<std::uint64_t>(config.cnr.shots));
    fp_mix_double(h, config.cnr.noise_scale);
    fp_mix(h, static_cast<std::uint64_t>(config.cnr.precision));
    fp_mix(h, static_cast<std::uint64_t>(config.repcap.samples_per_class));
    fp_mix(h, static_cast<std::uint64_t>(config.repcap.param_inits));
    fp_mix(h, static_cast<std::uint64_t>(config.repcap.num_bases));
    fp_mix(h, static_cast<std::uint64_t>(config.repcap.precision));
    fp_mix_double(h, config.cnr_threshold);
    fp_mix_double(h, config.keep_fraction);
    fp_mix_double(h, config.alpha_cnr);
    fp_mix(h, config.use_cnr ? 1 : 0);
    // Dead-structure pruning changes scores only at the floating-point
    // reassociation level, but resuming a journal written by the other
    // setting would mix pruned and unpruned scores in one ranking —
    // fingerprint it. Mixed conditionally so every pre-existing journal
    // (flags default false) keeps its stored fingerprint.
    if (config.cnr.prune_dead_structure ||
        config.repcap.prune_dead_structure) {
        fp_mix(h, 0x70727565ULL); // "prue" tag: domain separation
        fp_mix(h, config.cnr.prune_dead_structure ? 1 : 0);
        fp_mix(h, config.repcap.prune_dead_structure ? 1 : 0);
    }
    return h;
}

namespace {

sim::Precision
flip_precision(sim::Precision precision)
{
    return precision == sim::Precision::Float64
               ? sim::Precision::Float32Proxy
               : sim::Precision::Float64;
}

} // namespace

std::string
fingerprint_mismatch_hint(const ElivagarConfig &config,
                          std::uint64_t stored)
{
    // Single enumerable-field mutations, most likely culprit first
    // (the CLI's --precision sets CNR and RepCap together, so the
    // joint flip is the realistic one).
    struct Probe
    {
        const char *what;
        void (*mutate)(ElivagarConfig &);
    };
    static const Probe probes[] = {
        {"the precision setting changed (--precision f32 vs f64)",
         [](ElivagarConfig &c) {
             c.cnr.precision = flip_precision(c.cnr.precision);
             c.repcap.precision = flip_precision(c.repcap.precision);
         }},
        {"the CNR precision changed (f32 vs f64)",
         [](ElivagarConfig &c) {
             c.cnr.precision = flip_precision(c.cnr.precision);
         }},
        {"the RepCap precision changed (f32 vs f64)",
         [](ElivagarConfig &c) {
             c.repcap.precision = flip_precision(c.repcap.precision);
         }},
        {"use_cnr was toggled (the RepCap-only ablation)",
         [](ElivagarConfig &c) { c.use_cnr = !c.use_cnr; }},
        {"the CNR backend changed (density vs stabilizer)",
         [](ElivagarConfig &c) {
             c.cnr.backend = c.cnr.backend == CnrBackend::Density
                                 ? CnrBackend::Stabilizer
                                 : CnrBackend::Density;
         }},
        {"noise-aware candidate generation was toggled",
         [](ElivagarConfig &c) {
             c.candidate.noise_aware = !c.candidate.noise_aware;
         }},
        {"search-time dead-structure pruning was toggled "
         "(--prune-dead)",
         [](ElivagarConfig &c) {
             const bool on = c.cnr.prune_dead_structure ||
                             c.repcap.prune_dead_structure;
             c.cnr.prune_dead_structure = !on;
             c.repcap.prune_dead_structure = !on;
         }},
    };
    for (const Probe &probe : probes) {
        ElivagarConfig mutated = config;
        probe.mutate(mutated);
        if (config_fingerprint(mutated) == stored)
            return std::string("hint: ") + probe.what;
    }
    return "";
}

circ::Circuit
generate_search_candidate(const dev::Device &device,
                          const ElivagarConfig &config, std::size_t index)
{
    elv::Rng rng(stage_seed(config.seed, 0xe11a, index));
    return generate_candidate(device, config.candidate, rng);
}

exec::FaultConfig
prepare_fault_config(const ElivagarConfig &config)
{
    exec::FaultConfig faults = config.resilience.faults;
    if (config.resilience.enabled && faults.crash_after > 0 &&
        !faults.crash_clock)
        faults.crash_clock =
            std::make_shared<std::atomic<std::uint64_t>>(0);
    return faults;
}

CandidateCnr
evaluate_candidate_cnr(const dev::Device &device,
                       const circ::Circuit &circuit,
                       const ElivagarConfig &config,
                       const exec::FaultConfig &faults, std::size_t index)
{
    // The executor (ladder, retry state, fault streams) is seeded per
    // candidate, so evaluations stay order- and process-independent.
    std::unique_ptr<exec::ResilientExecutor> executor;
    CnrOptions options = config.cnr;
    if (config.resilience.enabled) {
        executor = std::make_unique<exec::ResilientExecutor>(
            device, cnr_backend_kind(config.cnr.backend),
            config.cnr.shots, config.cnr.noise_scale,
            config.resilience.retry, faults,
            stage_seed(config.seed, 0xe8ec, index),
            config.cnr.precision);
        options.executor = executor.get();
    }
    elv::Rng rng(stage_seed(config.seed, 0xc14, index));
    const CnrResult cnr =
        clifford_noise_resilience(circuit, device, rng, options);
    CandidateCnr out;
    out.cnr = cnr.cnr;
    out.executions = cnr.circuit_executions;
    out.degraded = cnr.degraded;
    out.retries = cnr.retries;
    if (executor) {
        out.counters = executor->counters();
        out.faults = executor->injected();
        out.wait_ms = executor->elapsed_ms();
    }
    return out;
}

CandidateRepCap
evaluate_candidate_repcap(const circ::Circuit &circuit,
                          const qml::Dataset &train,
                          const ElivagarConfig &config, std::size_t index)
{
    elv::Rng rng(stage_seed(config.seed, 0x2e9ca9, index));
    const RepCapResult rc =
        representational_capacity(circuit, train, rng, config.repcap);
    return {rc.repcap, rc.circuit_executions};
}

void
apply_cnr_selection(std::vector<CandidateRecord> &candidates,
                    const ElivagarConfig &config)
{
    std::vector<double> cnrs;
    cnrs.reserve(candidates.size());
    for (const auto &record : candidates)
        cnrs.push_back(record.cnr);
    std::sort(cnrs.begin(), cnrs.end(), std::greater<>());
    const std::size_t keep_count = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::floor(config.keep_fraction *
                          static_cast<double>(candidates.size()))));
    const double rank_cutoff = cnrs[keep_count - 1];
    for (auto &record : candidates)
        record.rejected_by_cnr = record.cnr < config.cnr_threshold ||
                                 record.cnr < rank_cutoff;
    // Never reject everything: keep the single most resilient
    // candidate even when all CNRs fall below the threshold.
    if (std::all_of(
            candidates.begin(), candidates.end(),
            [](const CandidateRecord &r) { return r.rejected_by_cnr; })) {
        auto best = std::max_element(
            candidates.begin(), candidates.end(),
            [](const CandidateRecord &a, const CandidateRecord &b) {
                return a.cnr < b.cnr;
            });
        best->rejected_by_cnr = false;
    }
}

double
composite_score(double cnr, double repcap, const ElivagarConfig &config)
{
    return std::pow(std::max(cnr, 0.0), config.alpha_cnr) * repcap;
}

SearchResult
elivagar_search(const dev::Device &device, const qml::Dataset &train,
                const ElivagarConfig &config)
{
    ELV_REQUIRE(config.num_candidates >= 1, "need at least one candidate");
    ELV_REQUIRE(config.keep_fraction > 0.0 && config.keep_fraction <= 1.0,
                "bad keep fraction");
    ELV_REQUIRE(config.threads >= 0, "bad thread count");
    train.check();
    device.validate();

    // Observability: one span covers the whole search; each pipeline
    // step below records a nested phase span plus a PhaseTiming rollup,
    // and candidate-level spans nest under the phases (args.i is the
    // candidate index).
    const auto search_start = std::chrono::steady_clock::now();
    ELV_TRACE_SCOPE("elivagar_search", "search");
    ELV_METRIC_COUNT_N("search.candidates",
                       static_cast<std::uint64_t>(config.num_candidates));

    SearchResult result;

    // Crash-safe journal: replay completed stages, append new ones.
    // All journal access from worker tasks goes through this mutex —
    // the journal is a single serialized writer, so records stay
    // untorn and the resume map is never mutated concurrently.
    std::unique_ptr<SearchJournal> journal;
    std::mutex journal_mutex;
    if (!config.resilience.checkpoint_path.empty()) {
        journal = std::make_unique<SearchJournal>(
            config.resilience.checkpoint_path,
            config_fingerprint(config));
        journal->set_mismatch_hint([&config](std::uint64_t stored) {
            return fingerprint_mismatch_hint(config, stored);
        });
        result.resumed = journal->load();
    }

    par::ThreadPool pool(config.threads);
    const auto pool_size =
        static_cast<std::size_t>(config.num_candidates);

    // Cooperative cancellation + progress. Checks run at phase
    // boundaries and at every per-candidate task; a tripped token
    // unwinds with CancelledError (the pool cancels queued tasks and
    // rethrows), leaving the journal valid for a later resume. The
    // progress callback fires from worker threads and must be
    // thread-safe; neither hook influences search values.
    const elv::CancelToken *cancel = config.hooks.cancel.get();
    auto check_cancel = [&](const char *where) {
        if (cancel)
            cancel->check(where);
    };
    std::atomic<std::size_t> phase_done{0};
    auto phase_begin = [&](const char *phase) {
        check_cancel(phase);
        phase_done.store(0, std::memory_order_relaxed);
        if (config.hooks.progress)
            config.hooks.progress(phase, 0, pool_size);
    };
    auto task_done = [&](const char *phase) {
        if (config.hooks.progress)
            config.hooks.progress(
                phase,
                phase_done.fetch_add(1, std::memory_order_relaxed) + 1,
                pool_size);
    };

    // Every candidate owns its ResilientExecutor (ladder, retry state,
    // fault streams seeded per candidate), so evaluations stay
    // order-independent under concurrency. crash_after is the one
    // cross-candidate fault: it means "after N successes across the
    // whole search", so the injectors share one execution clock.
    const exec::FaultConfig faults = prepare_fault_config(config);
    // Replays a journaled entry for candidate n, if present. The
    // returned pointer is stable (map node) and its fields are only
    // ever written by candidate n's own task, so reading it outside
    // the lock afterwards is race-free.
    auto journal_entry = [&](std::size_t n) -> const CheckpointEntry * {
        if (!journal)
            return nullptr;
        std::lock_guard<std::mutex> lock(journal_mutex);
        return journal->entry(static_cast<int>(n));
    };

    // Step 1: candidate generation. Cheap and fully deterministic in
    // the seed — one stream per candidate, so the pool is identical
    // for every thread count — and a resumed search regenerates the
    // pool and verifies it against the journal instead of trusting
    // the file blindly.
    result.candidates.resize(pool_size);
    {
        PhaseScope phase("generate", result);
        phase_begin("generate");
        pool.parallel_for(pool_size, [&](std::size_t n) {
            ELV_TRACE_SCOPE("generate", "search.candidate",
                            static_cast<std::int64_t>(n));
            check_cancel("generate");
            auto &record = result.candidates[n];
            record.circuit = generate_search_candidate(device, config, n);
            if (journal) {
                std::lock_guard<std::mutex> lock(journal_mutex);
                const CheckpointEntry *entry =
                    journal->entry(static_cast<int>(n));
                if (entry && !entry->circuit_line.empty()) {
                    if (entry->circuit_line !=
                        circ::to_text_line(record.circuit))
                        elv::fatal(
                            "journal " +
                            config.resilience.checkpoint_path +
                            ": candidate " + std::to_string(n) +
                            " does not match the regenerated pool; the "
                            "journal belongs to a different run");
                } else {
                    journal->record_candidate(static_cast<int>(n),
                                              record.circuit);
                }
            }
            task_done("generate");
        });
    }

    // Step 2: CNR for every candidate (replayed from the journal where
    // possible; each candidate draws from its own seeded stream).
    // Per-candidate tallies land in index-addressed slots and are
    // merged serially below, in candidate order, so the accounting —
    // including the floating-point wait totals — is bit-identical to
    // the serial run.
    struct CnrStageStats
    {
        std::uint64_t executions = 0;
        elv::RetryCounters counters;
        exec::FaultCounters faults;
        double wait_ms = 0.0;
    };
    if (config.use_cnr) {
        PhaseScope phase("cnr", result);
        phase_begin("cnr");
        std::vector<CnrStageStats> stats(pool_size);
        pool.parallel_for(pool_size, [&](std::size_t n) {
            ELV_TRACE_SCOPE("cnr", "search.candidate",
                            static_cast<std::int64_t>(n));
            check_cancel("cnr");
            auto &record = result.candidates[n];
            const CheckpointEntry *entry = journal_entry(n);
            if (entry && entry->has_cnr) {
                record.cnr = entry->cnr;
                record.degraded = entry->degraded;
                record.retries = entry->retries;
                stats[n].executions = entry->cnr_executions;
                task_done("cnr");
                return;
            }
            const CandidateCnr cnr = evaluate_candidate_cnr(
                device, record.circuit, config, faults, n);
            record.cnr = cnr.cnr;
            record.degraded = cnr.degraded;
            record.retries = cnr.retries;
            stats[n].executions = cnr.executions;
            stats[n].counters = cnr.counters;
            stats[n].faults = cnr.faults;
            stats[n].wait_ms = cnr.wait_ms;
            if (journal) {
                std::lock_guard<std::mutex> lock(journal_mutex);
                journal->record_cnr(static_cast<int>(n), cnr.cnr,
                                    cnr.executions, cnr.degraded,
                                    cnr.retries);
            }
            task_done("cnr");
        });
        for (std::size_t n = 0; n < pool_size; ++n) {
            result.cnr_executions += stats[n].executions;
            result.exec_counters += stats[n].counters;
            result.fault_counters += stats[n].faults;
            result.simulated_wait_ms += stats[n].wait_ms;
            ELV_METRIC_OBSERVE("search.cnr", cnr_edges(),
                               result.candidates[n].cnr);
        }

        // Step 3: early rejection — below threshold or outside the top
        // keep_fraction.
        apply_cnr_selection(result.candidates, config);
    }

    // Step 4: RepCap for the survivors only (per-candidate streams,
    // replayed from the journal where possible).
    std::vector<std::uint64_t> repcap_execs(pool_size, 0);
    {
        PhaseScope phase("repcap", result);
        phase_begin("repcap");
        pool.parallel_for(pool_size, [&](std::size_t n) {
            auto &record = result.candidates[n];
            if (record.rejected_by_cnr) {
                task_done("repcap");
                return;
            }
            ELV_TRACE_SCOPE("repcap", "search.candidate",
                            static_cast<std::int64_t>(n));
            check_cancel("repcap");
            const CheckpointEntry *entry = journal_entry(n);
            if (entry && entry->has_repcap) {
                record.repcap = entry->repcap;
                repcap_execs[n] = entry->repcap_executions;
                task_done("repcap");
                return;
            }
            const CandidateRepCap rc =
                evaluate_candidate_repcap(record.circuit, train, config, n);
            record.repcap = rc.repcap;
            repcap_execs[n] = rc.executions;
            if (journal) {
                std::lock_guard<std::mutex> lock(journal_mutex);
                journal->record_repcap(static_cast<int>(n), rc.repcap,
                                       rc.executions);
            }
            task_done("repcap");
        });
        for (std::size_t n = 0; n < pool_size; ++n) {
            if (!result.candidates[n].rejected_by_cnr)
                ++result.survivors;
            result.repcap_executions += repcap_execs[n];
        }
    }

    // Step 5: composite score and final selection (Eq. 7).
    const CandidateRecord *best = nullptr;
    {
        PhaseScope phase("rank", result);
        phase_begin("rank");
        for (int n = 0; n < config.num_candidates; ++n) {
            auto &record =
                result.candidates[static_cast<std::size_t>(n)];
            if (record.degraded)
                ++result.degraded_candidates;
            if (record.rejected_by_cnr)
                continue;
            record.score =
                composite_score(record.cnr, record.repcap, config);
            if (!best || record.score > best->score)
                best = &record;
            if (journal)
                journal->record_rank(n, record.score,
                                     record.rejected_by_cnr);
        }
    }
    ELV_REQUIRE(best != nullptr, "no surviving candidate");
    result.best_circuit = best->circuit;
    result.best_score = best->score;
    result.total_seconds = seconds_since(search_start);
    return result;
}

} // namespace elv::core
