/**
 * @file
 * Device-substrate tests: topology generators (qubit counts, degrees,
 * connectivity), distances, the Table 3 catalog (median error rates
 * matching the paper), determinism, and connected-subgraph sampling.
 */
#include <gtest/gtest.h>

#include <set>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "device/device.hpp"
#include "device/topology.hpp"

namespace {

using namespace elv;
using namespace elv::dev;

TEST(Topology, LineAndRing)
{
    const Topology line = line_topology(5);
    EXPECT_EQ(line.num_qubits(), 5);
    EXPECT_EQ(line.edges().size(), 4u);
    EXPECT_TRUE(line.is_connected());
    EXPECT_EQ(line.distance(0, 4), 4);

    const Topology ring = ring_topology(8);
    EXPECT_EQ(ring.edges().size(), 8u);
    EXPECT_EQ(ring.distance(0, 4), 4);
    EXPECT_EQ(ring.distance(0, 7), 1);
    for (int q = 0; q < 8; ++q)
        EXPECT_EQ(ring.neighbors(q).size(), 2u);
}

TEST(Topology, EdgeQueries)
{
    const Topology t = line_topology(3);
    EXPECT_TRUE(t.has_edge(0, 1));
    EXPECT_TRUE(t.has_edge(1, 0)); // undirected
    EXPECT_FALSE(t.has_edge(0, 2));
    EXPECT_GE(t.edge_index(1, 2), 0);
    EXPECT_EQ(t.edge_index(0, 2), -1);
}

TEST(Topology, IbmFalcon7Shape)
{
    const Topology t = ibm_falcon_7();
    EXPECT_EQ(t.num_qubits(), 7);
    EXPECT_EQ(t.edges().size(), 6u);
    EXPECT_TRUE(t.is_connected());
    // Hub qubits 1 and 5 have degree 3.
    EXPECT_EQ(t.neighbors(1).size(), 3u);
    EXPECT_EQ(t.neighbors(5).size(), 3u);
}

TEST(Topology, HeavyHex16And27)
{
    const Topology g = ibm_heavy_hex_16();
    EXPECT_EQ(g.num_qubits(), 16);
    EXPECT_EQ(g.edges().size(), 16u);
    EXPECT_TRUE(g.is_connected());

    const Topology k = ibm_falcon_27();
    EXPECT_EQ(k.num_qubits(), 27);
    EXPECT_EQ(k.edges().size(), 28u);
    EXPECT_TRUE(k.is_connected());
    // Heavy-hex: maximum degree 3.
    for (int q = 0; q < 27; ++q)
        EXPECT_LE(k.neighbors(q).size(), 3u);
}

TEST(Topology, Eagle127)
{
    const Topology t = ibm_eagle_127();
    EXPECT_EQ(t.num_qubits(), 127);
    EXPECT_TRUE(t.is_connected());
    for (int q = 0; q < 127; ++q) {
        EXPECT_GE(t.neighbors(q).size(), 1u);
        EXPECT_LE(t.neighbors(q).size(), 3u);
    }
}

TEST(Topology, GenericHeavyHexConnected)
{
    for (int rows = 1; rows <= 3; ++rows) {
        for (int cols = 1; cols <= 4; ++cols) {
            const Topology t = heavy_hex_lattice(rows, cols);
            EXPECT_TRUE(t.is_connected())
                << rows << "x" << cols;
            for (int q = 0; q < t.num_qubits(); ++q)
                EXPECT_LE(t.neighbors(q).size(), 3u);
        }
    }
}

TEST(Topology, AspenLattice)
{
    const Topology m2 = aspen_lattice(2, 5, false);
    EXPECT_EQ(m2.num_qubits(), 80);
    EXPECT_TRUE(m2.is_connected());

    const Topology m3 = aspen_lattice(2, 5, true);
    EXPECT_EQ(m3.num_qubits(), 79);
    EXPECT_TRUE(m3.is_connected());

    // Octagon interiors have degree 2 or 3 (ring + couplers).
    for (int q = 0; q < 80; ++q)
        EXPECT_LE(m2.neighbors(q).size(), 3u);
}

TEST(Topology, AllPairsDistancesMatchSingle)
{
    const Topology t = ibm_heavy_hex_16();
    const auto all = t.all_pairs_distances();
    for (int a = 0; a < 16; ++a)
        for (int b = 0; b < 16; ++b)
            EXPECT_EQ(all[static_cast<std::size_t>(a) * 16 +
                          static_cast<std::size_t>(b)],
                      t.distance(a, b));
}

TEST(Topology, SubgraphSamplingIsConnected)
{
    Rng rng(77);
    const Topology t = ibm_falcon_27();
    for (int trial = 0; trial < 50; ++trial) {
        const auto sub = sample_connected_subgraph(t, 5, rng);
        ASSERT_EQ(sub.size(), 5u);
        std::set<int> subset(sub.begin(), sub.end());
        EXPECT_EQ(subset.size(), 5u);
        // Connectivity of the induced subgraph via BFS.
        std::set<int> visited;
        std::vector<int> stack = {sub[0]};
        visited.insert(sub[0]);
        while (!stack.empty()) {
            const int q = stack.back();
            stack.pop_back();
            for (int nb : t.neighbors(q)) {
                if (subset.count(nb) && !visited.count(nb)) {
                    visited.insert(nb);
                    stack.push_back(nb);
                }
            }
        }
        EXPECT_EQ(visited.size(), 5u);
    }
}

TEST(Device, CatalogCoversTable3)
{
    const auto names = device_catalog();
    EXPECT_GE(names.size(), 12u);
    for (const auto &name : names) {
        const Device dev = make_device(name);
        EXPECT_EQ(dev.name, name);
        EXPECT_TRUE(dev.topology.is_connected()) << name;
        EXPECT_EQ(dev.t1_us.size(),
                  static_cast<std::size_t>(dev.num_qubits()));
        EXPECT_EQ(dev.error_2q.size(), dev.topology.edges().size());
        for (std::size_t q = 0;
             q < static_cast<std::size_t>(dev.num_qubits()); ++q) {
            EXPECT_GT(dev.t1_us[q], 0.0);
            EXPECT_LE(dev.t2_us[q], 2.0 * dev.t1_us[q] + 1e-9);
            EXPECT_GE(dev.readout_error[q], 0.0);
            EXPECT_LE(dev.readout_error[q], 0.5);
        }
    }
}

TEST(Device, QubitCountsMatchTable3)
{
    EXPECT_EQ(make_device("oqc_lucy").num_qubits(), 8);
    EXPECT_EQ(make_device("rigetti_aspen_m3").num_qubits(), 79);
    EXPECT_EQ(make_device("ibmq_jakarta").num_qubits(), 7);
    EXPECT_EQ(make_device("ibm_nairobi").num_qubits(), 7);
    EXPECT_EQ(make_device("ibm_lagos").num_qubits(), 7);
    EXPECT_EQ(make_device("ibm_perth").num_qubits(), 7);
    EXPECT_EQ(make_device("ibm_geneva").num_qubits(), 16);
    EXPECT_EQ(make_device("ibm_guadalupe").num_qubits(), 16);
    EXPECT_EQ(make_device("ibmq_kolkata").num_qubits(), 27);
    EXPECT_EQ(make_device("ibmq_mumbai").num_qubits(), 27);
    EXPECT_EQ(make_device("ibm_kyoto").num_qubits(), 127);
    EXPECT_EQ(make_device("ibm_osaka").num_qubits(), 127);
    EXPECT_EQ(make_device("ibmq_manila").num_qubits(), 5);
}

TEST(Device, MediansMatchPaperTable3)
{
    // Spot-check a few devices: the generated per-qubit values must have
    // medians close to the published Table 3 numbers.
    struct Expected
    {
        const char *name;
        double readout, e1q, e2q;
    };
    const Expected expected[] = {
        {"oqc_lucy", 1.3e-1, 6.2e-4, 4.4e-2},
        {"ibmq_kolkata", 1.2e-2, 2.3e-4, 9.0e-3},
        {"rigetti_aspen_m3", 8.0e-2, 1.5e-3, 9.3e-2},
        {"ibm_kyoto", 1.4e-2, 2.5e-4, 9.1e-3},
    };
    for (const auto &e : expected) {
        const Device dev = make_device(e.name);
        EXPECT_NEAR(Device::median(dev.readout_error) / e.readout, 1.0,
                    0.25)
            << e.name;
        EXPECT_NEAR(Device::median(dev.error_1q) / e.e1q, 1.0, 0.25)
            << e.name;
        EXPECT_NEAR(Device::median(dev.error_2q) / e.e2q, 1.0, 0.25)
            << e.name;
    }
}

TEST(Device, GenerationIsDeterministic)
{
    const Device a = make_device("ibm_lagos");
    const Device b = make_device("ibm_lagos");
    EXPECT_EQ(a.t1_us, b.t1_us);
    EXPECT_EQ(a.readout_error, b.readout_error);
    EXPECT_EQ(a.error_2q, b.error_2q);
}

TEST(Device, UnknownNameIsUsageError)
{
    EXPECT_THROW(make_device("ibm_atlantis"), elv::UsageError);
}

TEST(Device, EdgeErrorLookup)
{
    const Device dev = make_device("ibmq_jakarta");
    EXPECT_GT(dev.edge_error(0, 1), 0.0);
    EXPECT_THROW(dev.edge_error(0, 6), elv::UsageError);
}

} // namespace
