/**
 * @file
 * Verifies the compile-time kill switch: with ELV_OBS_DISABLED defined
 * (what CMake -DELV_OBS=OFF does globally), the instrumentation macros
 * expand to nothing — no registration, no enabled-flag load — while the
 * obs classes themselves stay usable. This TU defines the macro itself,
 * so one test binary covers the disabled expansion without a second
 * build tree.
 */
#ifndef ELV_OBS_DISABLED
#define ELV_OBS_DISABLED 1
#endif

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

TEST(ObsDisabled, MacrosExpandToNothing)
{
    auto &registry = elv::obs::Registry::global();
    auto &tracer = elv::obs::Tracer::global();
    registry.set_enabled(true);
    tracer.start();

    // Even with collection switched on, macro sites compiled under
    // ELV_OBS_DISABLED must not register or record anything.
    ELV_METRIC_COUNT("obs_disabled.counter");
    ELV_METRIC_COUNT_N("obs_disabled.counter", 5);
    ELV_METRIC_GAUGE_ADD("obs_disabled.gauge", 1);
    ELV_METRIC_OBSERVE("obs_disabled.hist",
                       (std::vector<double>{1.0, 2.0}), 0.5);
    {
        ELV_TRACE_SCOPE("obs_disabled.span", "test");
    }

    tracer.stop();
    registry.set_enabled(false);

    const auto snap = registry.snapshot();
    for (const auto &counter : snap.counters)
        EXPECT_EQ(counter.name.find("obs_disabled"), std::string::npos);
    for (const auto &gauge : snap.gauges)
        EXPECT_EQ(gauge.name.find("obs_disabled"), std::string::npos);
    for (const auto &hist : snap.histograms)
        EXPECT_EQ(hist.name.find("obs_disabled"), std::string::npos);
    for (const auto &event : tracer.drain())
        EXPECT_EQ(event.name.find("obs_disabled"), std::string::npos);
}

TEST(ObsDisabled, ClassesRemainUsableDirectly)
{
    // The macros vanish, but code that names the types (e.g. the
    // search's PhaseScope helper) still compiles and works.
    elv::obs::Registry registry;
    registry.counter("direct.use").add(2);
    EXPECT_EQ(registry.counter("direct.use").value(), 2u);
    {
        elv::obs::TraceScope span("direct.span", "test");
    }
}

} // namespace
