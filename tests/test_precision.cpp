/**
 * @file
 * Tests for the Float32Proxy precision policy: name round-trips, CNR
 * and RepCap ranking equivalence between f64 and f32 over a generated
 * candidate corpus, the server JobSpec precision field, and the
 * precision-misuse lint rule guarding training paths.
 *
 * The ranking-equivalence contract (ISSUE acceptance): both precisions
 * consume identical RNG streams, so scores differ only by float
 * rounding (~1e-6). Candidate pairs whose f64 score gap exceeds the
 * documented tie tolerance TIE_EPS must order identically under f32;
 * pairs inside the tolerance are ties and either order is accepted.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "core/candidate_gen.hpp"
#include "core/cnr.hpp"
#include "core/repcap.hpp"
#include "device/device.hpp"
#include "lint/lint.hpp"
#include "lint/preflight.hpp"
#include "qml/dataset.hpp"
#include "qml/synthetic.hpp"
#include "server/job.hpp"
#include "server/json_value.hpp"
#include "sim/precision.hpp"

namespace {

using namespace elv;
using circ::Circuit;
using sim::Precision;

/** Documented tie tolerance on f64 score gaps (see file comment). */
constexpr double TIE_EPS = 1e-6;

core::CandidateConfig
corpus_config(int num_features)
{
    core::CandidateConfig config;
    config.num_qubits = 4;
    config.num_params = 12;
    config.num_embeds = 4;
    config.num_meas = 2;
    config.num_features = num_features;
    return config;
}

std::vector<Circuit>
candidate_corpus(const dev::Device &device, int count, std::uint64_t seed,
                 int num_features = 4)
{
    Rng rng(seed);
    const core::CandidateConfig config = corpus_config(num_features);
    std::vector<Circuit> corpus;
    corpus.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
        corpus.push_back(core::generate_candidate(device, config, rng));
    return corpus;
}

/**
 * Assert the two score vectors induce the same ranking: every pair
 * separated by more than TIE_EPS in f64 must order the same way in f32.
 */
void
expect_same_ranking(const std::vector<double> &f64,
                    const std::vector<double> &f32)
{
    ASSERT_EQ(f64.size(), f32.size());
    int decisive_pairs = 0;
    for (std::size_t i = 0; i < f64.size(); ++i)
        for (std::size_t j = i + 1; j < f64.size(); ++j) {
            if (std::abs(f64[i] - f64[j]) <= TIE_EPS)
                continue;
            ++decisive_pairs;
            EXPECT_EQ(f64[i] < f64[j], f32[i] < f32[j])
                << "pair (" << i << ", " << j << "): f64 "
                << f64[i] << " vs " << f64[j] << ", f32 " << f32[i]
                << " vs " << f32[j];
        }
    // A corpus of all ties would make this test vacuous.
    EXPECT_GT(decisive_pairs, 0);
}

TEST(Precision, NamesRoundTrip)
{
    EXPECT_STREQ(sim::precision_name(Precision::Float64), "f64");
    EXPECT_STREQ(sim::precision_name(Precision::Float32Proxy), "f32");
    for (const char *name : {"f64", "float64", "double"})
        EXPECT_EQ(sim::precision_from_name(name), Precision::Float64);
    for (const char *name : {"f32", "float32", "float"})
        EXPECT_EQ(sim::precision_from_name(name),
                  Precision::Float32Proxy);
    EXPECT_FALSE(sim::precision_from_name("f16").has_value());
    EXPECT_FALSE(sim::precision_from_name("").has_value());
}

TEST(Precision, CnrRankingMatchesFloat64)
{
    const dev::Device device = dev::make_device("ibmq_manila");
    const std::vector<Circuit> corpus = candidate_corpus(device, 8, 11);

    std::vector<double> f64_scores;
    std::vector<double> f32_scores;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        core::CnrOptions options;
        options.num_replicas = 8;
        options.backend = core::CnrBackend::Density;

        // Fresh, identically-seeded RNGs: both precisions must consume
        // the same replica/noise draws for the scores to be comparable.
        Rng rng64(1000 + i);
        options.precision = Precision::Float64;
        const double s64 =
            core::clifford_noise_resilience(corpus[i], device, rng64,
                                            options)
                .cnr;

        Rng rng32(1000 + i);
        options.precision = Precision::Float32Proxy;
        const double s32 =
            core::clifford_noise_resilience(corpus[i], device, rng32,
                                            options)
                .cnr;

        EXPECT_NEAR(s32, s64, 1e-4) << "candidate " << i;
        f64_scores.push_back(s64);
        f32_scores.push_back(s32);
    }
    expect_same_ranking(f64_scores, f32_scores);
}

TEST(Precision, RepCapRankingMatchesFloat64)
{
    const dev::Device device = dev::make_device("ibmq_manila");
    // Moons is 2-dimensional; the candidates must not embed more.
    const std::vector<Circuit> corpus = candidate_corpus(device, 8, 29, 2);

    Rng data_rng(7);
    qml::Dataset data = qml::make_moons(32, 0.1, data_rng);
    qml::normalize_features(data, 0.0, 1.0);

    std::vector<double> f64_scores;
    std::vector<double> f32_scores;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        core::RepCapOptions options;
        options.samples_per_class = 4;
        options.param_inits = 6;
        options.num_bases = 2;

        Rng rng64(2000 + i);
        options.precision = Precision::Float64;
        const double s64 =
            core::representational_capacity(corpus[i], data, rng64,
                                            options)
                .repcap;

        Rng rng32(2000 + i);
        options.precision = Precision::Float32Proxy;
        const double s32 =
            core::representational_capacity(corpus[i], data, rng32,
                                            options)
                .repcap;

        EXPECT_NEAR(s32, s64, 1e-4) << "candidate " << i;
        f64_scores.push_back(s64);
        f32_scores.push_back(s32);
    }
    expect_same_ranking(f64_scores, f32_scores);
}

// --- Server job model -------------------------------------------------

TEST(Precision, JobSpecPrecisionRoundTripsThroughJson)
{
    srv::JobSpec spec;
    spec.benchmark = "moons";
    spec.candidates = 6;
    spec.precision = "f32";
    spec.check();

    srv::JsonValue value;
    std::string error;
    ASSERT_TRUE(srv::json_parse(spec.to_json(), value, error))
        << error;
    srv::JobSpec parsed;
    ASSERT_TRUE(srv::JobSpec::from_json(value, parsed, error))
        << error;
    EXPECT_EQ(parsed.precision, "f32");
}

TEST(Precision, JobSpecDefaultsToFloat64)
{
    const srv::JobSpec spec;
    EXPECT_EQ(spec.precision, "f64");
}

TEST(Precision, JobSpecRejectsUnknownPrecision)
{
    srv::JobSpec spec;
    spec.benchmark = "moons";
    spec.precision = "f16";
    EXPECT_THROW(spec.check(), elv::UsageError);
}

// --- Lint: precision-misuse -------------------------------------------

Circuit
tiny_trainable_circuit()
{
    Circuit c(2);
    c.add_variational(circ::GateKind::RY, {0});
    c.add_variational(circ::GateKind::RY, {1});
    c.add_gate(circ::GateKind::CX, {0, 1});
    c.set_measured({0});
    return c;
}

TEST(Precision, LintWarnsOnFloat32TrainingPath)
{
    const Circuit c = tiny_trainable_circuit();

    lint::LintOptions options;
    options.training_path = true;
    options.precision = Precision::Float32Proxy;
    const lint::Report report = lint::lint_circuit(c, options);
    EXPECT_TRUE(report.fired("precision-misuse"))
        << report.to_string();
    // A warning, not an error: training still runs (in f64).
    EXPECT_FALSE(report.has_errors()) << report.to_string();
    EXPECT_NO_THROW(
        lint::preflight(c, lint::Boundary::Training, options));
}

TEST(Precision, LintQuietWhenPrecisionIsSafe)
{
    const Circuit c = tiny_trainable_circuit();

    // f64 training path: fine.
    lint::LintOptions options;
    options.training_path = true;
    options.precision = Precision::Float64;
    EXPECT_FALSE(lint::lint_circuit(c, options).fired("precision-misuse"));

    // f32 on a scoring (non-training) path: the intended use.
    options.training_path = false;
    options.precision = Precision::Float32Proxy;
    EXPECT_FALSE(lint::lint_circuit(c, options).fired("precision-misuse"));
}

} // namespace
