/**
 * @file
 * Unit tests for the common substrate: RNG determinism and distribution
 * sanity, statistics, and the table printer.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "common/table.hpp"

namespace {

using elv::Rng;

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a.next_u64() == b.next_u64();
    EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIndexCoversRangeWithoutBias)
{
    Rng rng(11);
    std::vector<int> counts(5, 0);
    for (int i = 0; i < 50000; ++i)
        ++counts[rng.uniform_index(5)];
    for (int c : counts)
        EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, NormalMomentsMatch)
{
    Rng rng(3);
    std::vector<double> xs(20000);
    for (auto &x : xs)
        x = rng.normal(2.0, 0.5);
    EXPECT_NEAR(elv::mean(xs), 2.0, 0.02);
    EXPECT_NEAR(elv::stddev(xs), 0.5, 0.02);
}

TEST(Rng, CategoricalFollowsWeights)
{
    Rng rng(5);
    std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
    std::vector<int> counts(4, 0);
    for (int i = 0; i < 20000; ++i)
        ++counts[rng.categorical(w)];
    EXPECT_EQ(counts[2], 0);
    EXPECT_NEAR(counts[0] / 20000.0, 0.1, 0.01);
    EXPECT_NEAR(counts[1] / 20000.0, 0.3, 0.02);
    EXPECT_NEAR(counts[3] / 20000.0, 0.6, 0.02);
}

TEST(Rng, ChooseReturnsDistinctIndices)
{
    Rng rng(9);
    for (int trial = 0; trial < 50; ++trial) {
        auto picked = rng.choose(10, 4);
        ASSERT_EQ(picked.size(), 4u);
        std::set<std::size_t> unique(picked.begin(), picked.end());
        EXPECT_EQ(unique.size(), 4u);
        for (auto v : picked)
            EXPECT_LT(v, 10u);
    }
}

TEST(Rng, ChooseAllIsPermutation)
{
    Rng rng(13);
    auto picked = rng.choose(6, 6);
    std::set<std::size_t> unique(picked.begin(), picked.end());
    EXPECT_EQ(unique.size(), 6u);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(21);
    Rng child = a.split();
    EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Statistics, MeanAndStddev)
{
    std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(elv::mean(xs), 2.5);
    EXPECT_NEAR(elv::stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Statistics, PearsonPerfectCorrelation)
{
    std::vector<double> xs = {1, 2, 3, 4, 5};
    std::vector<double> ys = {2, 4, 6, 8, 10};
    EXPECT_NEAR(elv::pearson_r(xs, ys), 1.0, 1e-12);
    std::vector<double> neg = {10, 8, 6, 4, 2};
    EXPECT_NEAR(elv::pearson_r(xs, neg), -1.0, 1e-12);
}

TEST(Statistics, PearsonZeroOnConstant)
{
    std::vector<double> xs = {1, 2, 3};
    std::vector<double> ys = {5, 5, 5};
    EXPECT_DOUBLE_EQ(elv::pearson_r(xs, ys), 0.0);
}

TEST(Statistics, SpearmanMonotoneNonlinear)
{
    std::vector<double> xs = {1, 2, 3, 4, 5};
    std::vector<double> ys = {1, 8, 27, 64, 125}; // monotone, nonlinear
    EXPECT_NEAR(elv::spearman_r(xs, ys), 1.0, 1e-12);
}

TEST(Statistics, SpearmanHandlesTies)
{
    std::vector<double> xs = {1, 2, 2, 3};
    std::vector<double> ys = {1, 2, 2, 3};
    EXPECT_NEAR(elv::spearman_r(xs, ys), 1.0, 1e-12);
}

TEST(Statistics, AverageRanksTies)
{
    auto ranks = elv::average_ranks({10.0, 20.0, 20.0, 30.0});
    EXPECT_DOUBLE_EQ(ranks[0], 1.0);
    EXPECT_DOUBLE_EQ(ranks[1], 2.5);
    EXPECT_DOUBLE_EQ(ranks[2], 2.5);
    EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(Statistics, TotalVariationDistance)
{
    std::vector<double> p = {0.5, 0.5, 0.0};
    std::vector<double> q = {0.0, 0.5, 0.5};
    EXPECT_DOUBLE_EQ(elv::total_variation_distance(p, q), 0.5);
    EXPECT_DOUBLE_EQ(elv::total_variation_distance(p, p), 0.0);
}

TEST(Statistics, TvdIsSymmetricAndBounded)
{
    std::vector<double> p = {1.0, 0.0};
    std::vector<double> q = {0.0, 1.0};
    EXPECT_DOUBLE_EQ(elv::total_variation_distance(p, q), 1.0);
    EXPECT_DOUBLE_EQ(elv::total_variation_distance(q, p), 1.0);
}

TEST(Statistics, GeometricMean)
{
    std::vector<double> xs = {1.0, 100.0};
    EXPECT_NEAR(elv::geometric_mean(xs), 10.0, 1e-9);
}

TEST(Statistics, RequiresNonEmpty)
{
    std::vector<double> empty;
    EXPECT_THROW(elv::mean(empty), elv::InternalError);
    EXPECT_THROW(elv::geometric_mean(empty), elv::InternalError);
}

TEST(Table, RendersAlignedCells)
{
    elv::Table t("Demo");
    t.set_header({"name", "value"});
    t.add_row({"alpha", elv::Table::fmt(1.23456, 2)});
    t.add_row({"b", "x"});
    std::ostringstream oss;
    t.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("Demo"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("1.23"), std::string::npos);
}

TEST(Table, PercentFormatting)
{
    EXPECT_EQ(elv::Table::pct(0.825), "82.5");
    EXPECT_EQ(elv::Table::fmt(3.14159, 3), "3.142");
}

TEST(Logging, RequireThrowsInternalError)
{
    EXPECT_THROW(ELV_REQUIRE(false, "boom"), elv::InternalError);
    EXPECT_NO_THROW(ELV_REQUIRE(true, "fine"));
}

TEST(Logging, FatalThrowsUsageError)
{
    EXPECT_THROW(elv::fatal("bad input"), elv::UsageError);
}

} // namespace
