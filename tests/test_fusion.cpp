/**
 * @file
 * Fused execution engine: gate fusion equivalence, superoperator
 * channel kernels vs the Kraus reference, compiled noisy programs vs
 * the per-gate channel loop, and the batched-training determinism
 * contract (bit-identical results for every thread count).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/clifford_replica.hpp"
#include "common/rng.hpp"
#include "core/candidate_gen.hpp"
#include "device/device.hpp"
#include "noise/channels.hpp"
#include "noise/noise_model.hpp"
#include "noise/superop.hpp"
#include "qml/synthetic.hpp"
#include "qml/trainer.hpp"
#include "sim/density_matrix.hpp"
#include "sim/fusion.hpp"
#include "sim/statevector.hpp"

namespace {

using namespace elv;

/** Random mix of fixed, variational and embedding gates. */
circ::Circuit
random_circuit(int qubits, int ops, elv::Rng &rng, int features = 3)
{
    circ::Circuit c(qubits);
    const circ::GateKind fixed1[] = {
        circ::GateKind::H, circ::GateKind::S,   circ::GateKind::Sdg,
        circ::GateKind::X, circ::GateKind::Y,   circ::GateKind::Z,
    };
    const circ::GateKind fixed2[] = {circ::GateKind::CX,
                                     circ::GateKind::CZ,
                                     circ::GateKind::SWAP};
    const circ::GateKind param1[] = {circ::GateKind::RX,
                                     circ::GateKind::RY,
                                     circ::GateKind::RZ,
                                     circ::GateKind::U3};
    for (int n = 0; n < ops; ++n) {
        const int q0 = static_cast<int>(rng.uniform_index(qubits));
        switch (rng.uniform_index(5)) {
        case 0:
        case 1:
            c.add_gate(fixed1[rng.uniform_index(6)], {q0});
            break;
        case 2: {
            int q1 = static_cast<int>(rng.uniform_index(qubits));
            while (q1 == q0)
                q1 = static_cast<int>(rng.uniform_index(qubits));
            c.add_gate(fixed2[rng.uniform_index(3)], {q0, q1});
            break;
        }
        case 3:
            c.add_variational(param1[rng.uniform_index(4)], {q0});
            break;
        default:
            c.add_embedding(
                circ::GateKind::RY, {q0},
                static_cast<int>(rng.uniform_index(features)));
            break;
        }
    }
    c.set_measured({0});
    return c;
}

std::vector<double>
random_values(std::size_t count, elv::Rng &rng)
{
    std::vector<double> v(count);
    for (auto &p : v)
        p = rng.uniform(-M_PI, M_PI);
    return v;
}

double
max_amp_diff(const sim::StateVector &a, const sim::StateVector &b)
{
    double diff = 0.0;
    for (std::size_t i = 0; i < a.dim(); ++i)
        diff = std::max(diff, std::abs(a.amp(i) - b.amp(i)));
    return diff;
}

double
max_element_diff(const sim::DensityMatrix &a, const sim::DensityMatrix &b)
{
    const std::size_t dim = std::size_t{1} << a.num_qubits();
    double diff = 0.0;
    for (std::size_t r = 0; r < dim; ++r)
        for (std::size_t c = 0; c < dim; ++c)
            diff = std::max(diff,
                            std::abs(a.element(r, c) - b.element(r, c)));
    return diff;
}

/** A mixed non-trivial test state. */
sim::DensityMatrix
prepared_state(int qubits)
{
    sim::DensityMatrix rho(qubits);
    circ::Circuit c(qubits);
    for (int q = 0; q < qubits; ++q)
        c.add_gate(circ::GateKind::H, {q});
    for (int q = 0; q + 1 < qubits; ++q)
        c.add_gate(circ::GateKind::CX, {q, q + 1});
    c.add_gate(circ::GateKind::S, {0});
    rho.run(c);
    rho.apply_depolarizing_1q(0.05, qubits - 1); // make it mixed
    return rho;
}

TEST(Fusion, MatchesPerGateExecutionOnRandomCircuits)
{
    elv::Rng rng(41);
    for (int trial = 0; trial < 20; ++trial) {
        const int qubits = 2 + static_cast<int>(rng.uniform_index(4));
        const circ::Circuit c = random_circuit(qubits, 40, rng);
        const auto params = random_values(
            static_cast<std::size_t>(c.num_params()), rng);
        const auto x = random_values(3, rng);

        sim::StateVector plain(qubits), fused(qubits);
        plain.run(c, params, x);
        sim::FusedProgram::compile(c).run(fused, params, x);
        EXPECT_LE(max_amp_diff(plain, fused), 1e-12)
            << "trial " << trial << " qubits " << qubits;
    }
}

TEST(Fusion, MergesAdjacentFixedGates)
{
    // H S H on one qubit + CX with absorbed neighbors: everything fixed
    // fuses; the whole circuit becomes a handful of dense ops.
    circ::Circuit c(2);
    c.add_gate(circ::GateKind::H, {0});
    c.add_gate(circ::GateKind::S, {0});
    c.add_gate(circ::GateKind::H, {1});
    c.add_gate(circ::GateKind::CX, {0, 1});
    c.add_gate(circ::GateKind::Z, {1});
    c.set_measured({0, 1});

    const sim::FusedProgram p = sim::FusedProgram::compile(c);
    EXPECT_EQ(p.source_ops(), 5u);
    EXPECT_EQ(p.ops().size(), 1u); // all five collapse into one Mat4
    EXPECT_EQ(p.ops_merged(), 4u);
}

TEST(Fusion, ParametricGatesAreBarriers)
{
    circ::Circuit c(1);
    c.add_gate(circ::GateKind::H, {0});
    c.add_variational(circ::GateKind::RZ, {0});
    c.add_gate(circ::GateKind::H, {0});
    c.set_measured({0});

    const sim::FusedProgram p = sim::FusedProgram::compile(c);
    ASSERT_EQ(p.ops().size(), 3u);
    EXPECT_EQ(p.ops()[1].kind, sim::FusedOp::Kind::Barrier);
    EXPECT_EQ(p.ops_merged(), 0u);
}

TEST(Fusion, CacheReturnsSharedProgramAndClears)
{
    sim::FusionCache::global().clear();
    circ::Circuit c(2);
    c.add_gate(circ::GateKind::H, {0});
    c.add_gate(circ::GateKind::CX, {0, 1});
    c.set_measured({0});

    const auto a = sim::FusionCache::global().get(c);
    const auto b = sim::FusionCache::global().get(c);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(sim::FusionCache::global().size(), 1u);
    sim::FusionCache::global().clear();
    EXPECT_EQ(sim::FusionCache::global().size(), 0u);
}

TEST(Superop, DepolarizingMatchesKrausLoop1q)
{
    for (const double p : {0.0, 0.013, 0.2}) {
        const auto kraus = noise::depolarizing_1q_kraus(p);
        const sim::Mat4 s = noise::kraus_superop_1q(kraus);
        for (int q = 0; q < 3; ++q) {
            sim::DensityMatrix a = prepared_state(3);
            sim::DensityMatrix b = a;
            a.apply_kraus_1q(kraus, q);
            b.apply_superop_1q(s, q);
            EXPECT_LE(max_element_diff(a, b), 1e-14)
                << "p=" << p << " q=" << q;
        }
    }
}

TEST(Superop, DepolarizingMatchesKrausLoop2q)
{
    const auto kraus = noise::depolarizing_2q_kraus(0.021);
    const sim::Mat16 s = noise::kraus_superop_2q(kraus);
    const int pairs[][2] = {{0, 1}, {1, 0}, {0, 2}, {2, 1}};
    for (const auto &pair : pairs) {
        sim::DensityMatrix a = prepared_state(3);
        sim::DensityMatrix b = a;
        a.apply_kraus_2q(kraus, pair[0], pair[1]);
        b.apply_superop_2q(s, pair[0], pair[1]);
        EXPECT_LE(max_element_diff(a, b), 1e-14)
            << "pair (" << pair[0] << "," << pair[1] << ")";
    }
}

TEST(Superop, ThermalRelaxationMatchesKrausLoop)
{
    const auto kraus =
        noise::thermal_relaxation_kraus(85.0, 60.0, 0.25);
    const sim::Mat4 s = noise::kraus_superop_1q(kraus);
    for (int q = 0; q < 3; ++q) {
        sim::DensityMatrix a = prepared_state(3);
        sim::DensityMatrix b = a;
        a.apply_kraus_1q(kraus, q);
        b.apply_superop_1q(s, q);
        EXPECT_LE(max_element_diff(a, b), 1e-14) << "q=" << q;
    }
}

TEST(Superop, UnitarySuperopMatchesDirectUnitary)
{
    elv::Rng rng(7);
    const sim::Mat2 u1 = sim::gate_matrix_1q(
        circ::GateKind::U3, {rng.uniform(0.0, M_PI),
                             rng.uniform(0.0, 2 * M_PI),
                             rng.uniform(0.0, 2 * M_PI)});
    sim::DensityMatrix a = prepared_state(3);
    sim::DensityMatrix b = a;
    a.apply_1q(u1, 1);
    b.apply_superop_1q(noise::unitary_superop_1q(u1), 1);
    EXPECT_LE(max_element_diff(a, b), 1e-14);

    const sim::Mat4 u2 =
        sim::gate_matrix_2q(circ::GateKind::CX, {0.0, 0.0, 0.0});
    sim::DensityMatrix c = prepared_state(3);
    sim::DensityMatrix d = c;
    c.apply_2q(u2, 2, 0);
    d.apply_superop_2q(noise::unitary_superop_2q(u2), 2, 0);
    EXPECT_LE(max_element_diff(c, d), 1e-14);
}

TEST(Superop, KrausScratchReusePreservesResults)
{
    // Back-to-back generic-Kraus channels reuse the member scratch;
    // results must be independent of prior channel applications.
    const auto depol = noise::depolarizing_1q_kraus(0.03);
    const auto thermal =
        noise::thermal_relaxation_kraus(90.0, 70.0, 0.5);
    sim::DensityMatrix seq = prepared_state(3);
    seq.apply_kraus_1q(depol, 0);
    seq.apply_kraus_1q(thermal, 1);
    seq.apply_kraus_1q(depol, 2);

    sim::DensityMatrix ref = prepared_state(3);
    ref.apply_superop_1q(noise::kraus_superop_1q(depol), 0);
    ref.apply_superop_1q(noise::kraus_superop_1q(thermal), 1);
    ref.apply_superop_1q(noise::kraus_superop_1q(depol), 2);
    EXPECT_LE(max_element_diff(seq, ref), 1e-14);
    EXPECT_NEAR(seq.trace(), 1.0, 1e-12);
}

TEST(NoisyProgram, MatchesUnfusedChannelLoop)
{
    const dev::Device device = dev::make_device("ibmq_jakarta");
    elv::Rng rng(19);
    core::CandidateConfig config;
    config.num_qubits = 4;
    config.num_params = 8;
    config.num_embeds = 3;
    config.num_meas = 2;
    config.num_features = 3;

    noise::NoisyDensitySimulator fused(device);
    noise::NoisyDensitySimulator unfused(device);
    unfused.use_fused_execution(false);

    for (int trial = 0; trial < 5; ++trial) {
        const circ::Circuit c =
            core::generate_candidate(device, config, rng);
        const auto params = random_values(
            static_cast<std::size_t>(c.num_params()), rng);
        const auto x = random_values(3, rng);

        const auto a = fused.run_distribution(c, params, x);
        const auto b = unfused.run_distribution(c, params, x);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i)
            EXPECT_NEAR(a[i], b[i], 1e-12) << "trial " << trial;

        EXPECT_NEAR(fused.fidelity(c, params, x),
                    unfused.fidelity(c, params, x), 1e-12);
    }
}

TEST(NoisyProgram, MatchesUnfusedOnCliffordReplicas)
{
    // The CNR hot path: all-fixed replicas fuse maximally.
    const dev::Device device = dev::make_device("ibmq_jakarta");
    elv::Rng rng(29);
    core::CandidateConfig config;
    config.num_qubits = 5;
    config.num_params = 10;
    config.num_embeds = 2;
    config.num_meas = 2;
    config.num_features = 3;
    const circ::Circuit candidate =
        core::generate_candidate(device, config, rng);

    noise::NoisyDensitySimulator fused(device);
    noise::NoisyDensitySimulator unfused(device);
    unfused.use_fused_execution(false);
    for (int m = 0; m < 4; ++m) {
        const circ::Circuit replica =
            circ::make_clifford_replica(candidate, rng);
        EXPECT_NEAR(fused.fidelity(replica), unfused.fidelity(replica),
                    1e-12);
    }
}

TEST(NoisyProgram, NoiseScaleZeroIsNoiselessInBothPaths)
{
    const dev::Device device = dev::make_device("ibmq_jakarta");
    elv::Rng rng(31);
    core::CandidateConfig config;
    config.num_qubits = 3;
    config.num_params = 6;
    config.num_embeds = 2;
    config.num_meas = 1;
    config.num_features = 3;
    const circ::Circuit c = core::generate_candidate(device, config, rng);
    const auto params =
        random_values(static_cast<std::size_t>(c.num_params()), rng);
    const auto x = random_values(3, rng);

    noise::NoisyDensitySimulator fused(device, 0.0);
    noise::NoisyDensitySimulator unfused(device, 0.0);
    unfused.use_fused_execution(false);
    const auto a = fused.run_distribution(c, params, x);
    const auto b = unfused.run_distribution(c, params, x);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(a[i], b[i], 1e-12);
    EXPECT_NEAR(fused.fidelity(c, params, x), 1.0, 1e-9);
}

/** A small trainable circuit on the moons features. */
circ::Circuit
training_circuit()
{
    circ::Circuit c(3);
    for (int q = 0; q < 3; ++q)
        c.add_embedding(circ::GateKind::RY, {q}, q % 2);
    for (int q = 0; q < 3; ++q)
        c.add_variational(circ::GateKind::RX, {q});
    c.add_gate(circ::GateKind::CX, {0, 1});
    c.add_gate(circ::GateKind::CX, {1, 2});
    for (int q = 0; q < 3; ++q)
        c.add_variational(circ::GateKind::RZ, {q});
    c.set_measured({0});
    return c;
}

TEST(BatchedTraining, BitIdenticalForEveryThreadCount)
{
    const qml::Benchmark bench = qml::make_benchmark("moons", 17, 0.1);
    const circ::Circuit c = training_circuit();

    for (const auto backend : {qml::GradientBackend::Adjoint,
                               qml::GradientBackend::ParameterShift}) {
        qml::TrainConfig serial;
        serial.epochs = 2;
        serial.batch_size = 5; // deliberately not dividing the set
        serial.seed = 3;
        serial.backend = backend;
        serial.threads = 1;
        const qml::TrainResult ref =
            qml::train_circuit(c, bench.train, serial);

        for (int threads = 2; threads <= 4; ++threads) {
            qml::TrainConfig tc = serial;
            tc.threads = threads;
            const qml::TrainResult got =
                qml::train_circuit(c, bench.train, tc);
            ASSERT_EQ(ref.params.size(), got.params.size());
            for (std::size_t i = 0; i < ref.params.size(); ++i)
                EXPECT_EQ(ref.params[i], got.params[i])
                    << "threads=" << threads << " param " << i;
            ASSERT_EQ(ref.loss_history.size(),
                      got.loss_history.size());
            for (std::size_t e = 0; e < ref.loss_history.size(); ++e)
                EXPECT_EQ(ref.loss_history[e], got.loss_history[e])
                    << "threads=" << threads << " epoch " << e;
            EXPECT_EQ(ref.circuit_executions, got.circuit_executions)
                << "threads=" << threads;
        }
    }
}

TEST(ExecutionCount, DatasetVariantCountsEachSampleOnce)
{
    // 35 samples in batches of 8: five batches (8+8+8+8+3); the
    // steps x batch_size formula would bill 5 x 8 = 40 samples.
    EXPECT_EQ(qml::parameter_shift_execution_count_dataset(10, 2, 35, 8),
              21ull * 2ull * 35ull);
    // When batch_size divides the set the two formulas agree.
    EXPECT_EQ(qml::parameter_shift_execution_count_dataset(10, 2, 32, 8),
              qml::parameter_shift_execution_count(10, 2, 4, 8));
    // A batch cap limits the per-epoch sample count.
    EXPECT_EQ(
        qml::parameter_shift_execution_count_dataset(10, 2, 35, 8, 2),
        21ull * 2ull * 16ull);
    // A cap beyond the dataset size changes nothing.
    EXPECT_EQ(
        qml::parameter_shift_execution_count_dataset(10, 2, 35, 8, 9),
        21ull * 2ull * 35ull);
}

TEST(ExecutionCount, TrainerMatchesDatasetFormula)
{
    // The parameter-shift trainer's tally must equal the closed form
    // regardless of simulator threading.
    const qml::Benchmark bench = qml::make_benchmark("moons", 23, 0.05);
    const circ::Circuit c = training_circuit();
    qml::TrainConfig tc;
    tc.epochs = 2;
    tc.batch_size = 4;
    tc.backend = qml::GradientBackend::ParameterShift;
    tc.seed = 9;
    tc.threads = 3;
    const qml::TrainResult result =
        qml::train_circuit(c, bench.train, tc);
    EXPECT_EQ(result.circuit_executions,
              qml::parameter_shift_execution_count_dataset(
                  c.num_params(), tc.epochs,
                  static_cast<int>(bench.train.samples.size()),
                  tc.batch_size));
}

} // namespace
