/**
 * @file
 * Noise-substrate tests: Kraus completeness of every channel, readout
 * confusion, noisy density-matrix execution (trace preservation, fidelity
 * degradation with depth and with noise scale), Pauli twirl sanity, and
 * cross-backend agreement between the exact density-matrix executor and
 * the stochastic stabilizer executor on Clifford circuits.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/builders.hpp"
#include "circuit/clifford_replica.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "device/device.hpp"
#include "noise/channels.hpp"
#include "noise/noise_model.hpp"
#include "sim/density_matrix.hpp"
#include "stabilizer/tableau.hpp"

namespace {

using namespace elv;
using namespace elv::circ;
using namespace elv::noise;
using elv::dev::make_device;

/** Check sum_k K^dag K = I for a 1-qubit Kraus set. */
void
expect_complete_1q(const std::vector<sim::Mat2> &kraus)
{
    sim::Mat2 acc = {};
    for (const auto &k : kraus) {
        const sim::Mat2 t = sim::matmul(sim::dagger(k), k);
        for (int i = 0; i < 2; ++i)
            for (int j = 0; j < 2; ++j)
                acc[i][j] += t[i][j];
    }
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j)
            EXPECT_NEAR(std::abs(acc[i][j] -
                                 (i == j ? sim::Amp(1) : sim::Amp(0))),
                        0.0, 1e-12);
}

TEST(Channels, KrausCompleteness)
{
    expect_complete_1q(depolarizing_1q_kraus(0.0));
    expect_complete_1q(depolarizing_1q_kraus(0.13));
    expect_complete_1q(depolarizing_1q_kraus(1.0));
    expect_complete_1q(amplitude_damping_kraus(0.3));
    expect_complete_1q(phase_damping_kraus(0.25));
    expect_complete_1q(thermal_relaxation_kraus(100.0, 80.0, 300.0));
    expect_complete_1q(thermal_relaxation_kraus(100.0, 200.0, 300.0));

    sim::Mat4 acc = {};
    for (const auto &k : depolarizing_2q_kraus(0.2)) {
        const sim::Mat4 t = sim::matmul(sim::dagger(k), k);
        for (int i = 0; i < 4; ++i)
            for (int j = 0; j < 4; ++j)
                acc[i][j] += t[i][j];
    }
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            EXPECT_NEAR(std::abs(acc[i][j] -
                                 (i == j ? sim::Amp(1) : sim::Amp(0))),
                        0.0, 1e-12);
}

TEST(Channels, PauliProbsSumToOne)
{
    for (const PauliProbs &p :
         {depolarizing_pauli(0.1),
          thermal_relaxation_pauli(100.0, 70.0, 300.0),
          compose(depolarizing_pauli(0.05),
                  thermal_relaxation_pauli(50.0, 40.0, 200.0))}) {
        EXPECT_NEAR(p.pi + p.px + p.py + p.pz, 1.0, 1e-12);
        EXPECT_GE(p.pi, 0.0);
        EXPECT_GE(p.px, 0.0);
        EXPECT_GE(p.py, 0.0);
        EXPECT_GE(p.pz, 0.0);
    }
}

TEST(Channels, ThermalRelaxationTwirlShrinksWithDuration)
{
    const PauliProbs fast = thermal_relaxation_pauli(100, 70, 100);
    const PauliProbs slow = thermal_relaxation_pauli(100, 70, 2000);
    EXPECT_GT(fast.pi, slow.pi);
}

TEST(Channels, ComposeMatchesDoubleDepolarizing)
{
    // Composing two depolarizing channels stays a Pauli channel with a
    // combined error rate p = p1 + p2 - 4 p1 p2 / 3.
    const double p1 = 0.1, p2 = 0.2;
    const PauliProbs c = compose(depolarizing_pauli(p1),
                                 depolarizing_pauli(p2));
    const double combined = p1 + p2 - 4.0 * p1 * p2 / 3.0;
    EXPECT_NEAR(1.0 - c.pi, combined, 1e-12);
    EXPECT_NEAR(c.px, combined / 3.0, 1e-12);
}

TEST(Readout, ConfusionMatrixBitwise)
{
    // Pure |00> distribution with 10% flip on bit 0, 20% on bit 1.
    const std::vector<double> probs = {1.0, 0.0, 0.0, 0.0};
    const auto noisy = apply_readout_confusion(probs, {0.1, 0.2});
    EXPECT_NEAR(noisy[0], 0.9 * 0.8, 1e-12);
    EXPECT_NEAR(noisy[1], 0.1 * 0.8, 1e-12);
    EXPECT_NEAR(noisy[2], 0.9 * 0.2, 1e-12);
    EXPECT_NEAR(noisy[3], 0.1 * 0.2, 1e-12);
}

TEST(Readout, ZeroErrorIsIdentity)
{
    const std::vector<double> probs = {0.25, 0.25, 0.25, 0.25};
    const auto noisy = apply_readout_confusion(probs, {0.0, 0.0});
    EXPECT_EQ(noisy, probs);
}

TEST(NoisyDensity, DistributionIsNormalized)
{
    const dev::Device dev = make_device("ibmq_jakarta");
    NoisyDensitySimulator sim(dev);
    Circuit c(dev.num_qubits());
    c.add_gate(GateKind::H, {0});
    c.add_gate(GateKind::CX, {0, 1});
    c.set_measured({0, 1});
    const auto probs = sim.run_distribution(c);
    double total = 0.0;
    for (double p : probs) {
        EXPECT_GE(p, -1e-12);
        total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(NoisyDensity, FidelityDecreasesWithDepth)
{
    const dev::Device dev = make_device("oqc_lucy");
    NoisyDensitySimulator sim(dev);
    double prev = 1.0;
    for (int layers : {1, 4, 16}) {
        // Identity-composing layers: the ideal output stays |000>, so
        // 1 - TVD degrades monotonically as noise accumulates.
        Circuit c(dev.num_qubits());
        for (int l = 0; l < layers; ++l) {
            c.add_gate(GateKind::H, {0});
            c.add_gate(GateKind::CX, {0, 1});
            c.add_gate(GateKind::CX, {1, 2});
            c.add_gate(GateKind::CX, {1, 2});
            c.add_gate(GateKind::CX, {0, 1});
            c.add_gate(GateKind::H, {0});
        }
        c.set_measured({0, 1, 2});
        const double fid = sim.fidelity(c);
        EXPECT_LT(fid, prev);
        EXPECT_GT(fid, 0.0);
        prev = fid;
    }
}

TEST(NoisyDensity, NoiseScaleZeroIsIdeal)
{
    const dev::Device dev = make_device("ibm_lagos");
    NoisyDensitySimulator noiseless(dev, 0.0);
    Circuit c(dev.num_qubits());
    c.add_gate(GateKind::H, {1});
    c.add_gate(GateKind::CX, {1, 3});
    c.set_measured({1, 3});
    EXPECT_NEAR(noiseless.fidelity(c), 1.0, 1e-12);

    NoisyDensitySimulator noisy(dev, 1.0);
    NoisyDensitySimulator very_noisy(dev, 4.0);
    EXPECT_GT(noisy.fidelity(c), very_noisy.fidelity(c));
}

TEST(NoisyDensity, RejectsUncoupledTwoQubitGates)
{
    const dev::Device dev = make_device("ibmq_jakarta");
    NoisyDensitySimulator sim(dev);
    Circuit c(dev.num_qubits());
    c.add_gate(GateKind::CX, {0, 6}); // not coupled on Falcon-7
    c.set_measured({0});
    EXPECT_THROW(sim.run_distribution(c), elv::UsageError);
}

TEST(NoisyDensity, WorksOnLargeDeviceViaCompaction)
{
    // A 3-qubit circuit placed on physical qubits of the 127-qubit
    // Eagle: compaction must keep the density matrix tiny.
    const dev::Device dev = make_device("ibm_kyoto");
    // Find a path of three connected qubits.
    int a = -1, b = -1, c2 = -1;
    for (int q = 0; q < dev.num_qubits() && a < 0; ++q) {
        const auto &nbs = dev.topology.neighbors(q);
        if (nbs.size() >= 2) {
            a = nbs[0];
            b = q;
            c2 = nbs[1];
        }
    }
    ASSERT_GE(a, 0);
    Circuit c(dev.num_qubits());
    c.add_gate(GateKind::H, {b});
    c.add_gate(GateKind::CX, {b, a});
    c.add_gate(GateKind::CX, {b, c2});
    c.set_measured({a, b, c2});
    NoisyDensitySimulator sim(dev);
    const double fid = sim.fidelity(c);
    EXPECT_GT(fid, 0.5);
    EXPECT_LT(fid, 1.0);
}

TEST(CrossBackend, StabilizerMatchesDensityOnCliffordCircuit)
{
    // The stochastic-Pauli stabilizer executor approximates the exact
    // density-matrix executor on a Clifford circuit. Depolarizing and
    // readout parts are exact under twirling; thermal relaxation is
    // approximated, so the tolerance is loose but tight enough to catch
    // structural bugs.
    const dev::Device dev = make_device("ibm_perth");
    Circuit phys(dev.num_qubits());
    phys.add_gate(GateKind::H, {1});
    phys.add_gate(GateKind::CX, {1, 3});
    phys.add_gate(GateKind::CX, {3, 5});
    phys.add_gate(GateKind::S, {5});
    phys.add_gate(GateKind::H, {5});
    phys.set_measured({1, 3, 5});

    NoisyDensitySimulator exact(dev);
    const auto dense = exact.run_distribution(phys);

    std::vector<int> kept;
    const Circuit local = phys.compacted(kept);
    DevicePauliNoise hook(dev, kept);
    Rng rng(2024);
    const auto sampled =
        stab::sample_distribution(local, 40000, rng, &hook);

    ASSERT_EQ(dense.size(), sampled.size());
    EXPECT_LT(total_variation_distance(dense, sampled), 0.05);
}

TEST(CrossBackend, NoiselessAgreementIsExact)
{
    const dev::Device dev = make_device("ibm_perth");
    Circuit phys(dev.num_qubits());
    phys.add_gate(GateKind::H, {1});
    phys.add_gate(GateKind::CX, {1, 3});
    phys.set_measured({1, 3});

    NoisyDensitySimulator ideal(dev, 0.0);
    const auto dense = ideal.run_distribution(phys);

    std::vector<int> kept;
    const Circuit local = phys.compacted(kept);
    DevicePauliNoise hook(dev, kept, 0.0);
    Rng rng(7);
    const auto sampled =
        stab::sample_distribution(local, 20000, rng, &hook);
    EXPECT_LT(total_variation_distance(dense, sampled), 0.02);
}

TEST(ReadoutMitigation, InvertsConfusionExactly)
{
    const std::vector<double> ideal = {0.55, 0.05, 0.3, 0.1};
    const std::vector<double> flips = {0.08, 0.15};
    const auto noisy = apply_readout_confusion(ideal, flips);
    const auto recovered = mitigate_readout(noisy, flips);
    for (std::size_t k = 0; k < ideal.size(); ++k)
        EXPECT_NEAR(recovered[k], ideal[k], 1e-12);
}

TEST(ReadoutMitigation, ClipsSampledArtifacts)
{
    // A sampled histogram that the exact inverse would push negative.
    const std::vector<double> sampled = {0.9, 0.0, 0.1, 0.0};
    const auto recovered = mitigate_readout(sampled, {0.2, 0.2});
    double total = 0.0;
    for (double p : recovered) {
        EXPECT_GE(p, 0.0);
        total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ReadoutMitigation, RejectsNonInvertibleError)
{
    EXPECT_THROW(mitigate_readout({0.5, 0.5}, {0.5}), elv::UsageError);
}

TEST(FastChannels, DepolarizingMatchesKraus)
{
    // The closed-form depolarizing paths must agree with the generic
    // Kraus route on an arbitrary entangled state.
    Rng rng(99);
    Circuit c = build_random_rxyz_cz(3, 3, 9, 3, rng);
    std::vector<double> params(9);
    for (auto &p : params)
        p = rng.uniform(-M_PI, M_PI);
    const std::vector<double> x = {0.2, -0.9, 0.5};

    for (double p : {0.0, 0.05, 0.4}) {
        sim::DensityMatrix kraus_rho(3), fast_rho(3);
        kraus_rho.run(c, params, x);
        fast_rho.run(c, params, x);

        kraus_rho.apply_kraus_1q(depolarizing_1q_kraus(p), 1);
        fast_rho.apply_depolarizing_1q(p, 1);
        kraus_rho.apply_kraus_2q(depolarizing_2q_kraus(p), 0, 2);
        fast_rho.apply_depolarizing_2q(p, 0, 2);

        for (std::size_t r = 0; r < 8; ++r)
            for (std::size_t cc = 0; cc < 8; ++cc)
                EXPECT_NEAR(std::abs(kraus_rho.element(r, cc) -
                                     fast_rho.element(r, cc)),
                            0.0, 1e-12)
                    << "p=" << p;
    }
}

TEST(FastChannels, ThermalRelaxationMatchesKraus)
{
    Rng rng(101);
    Circuit c = build_random_rxyz_cz(3, 3, 9, 3, rng);
    std::vector<double> params(9);
    for (auto &p : params)
        p = rng.uniform(-M_PI, M_PI);
    const std::vector<double> x = {0.4, 0.1, -0.7};

    for (auto [t1, t2, dur] :
         {std::tuple{100.0, 80.0, 300.0}, std::tuple{50.0, 90.0, 700.0},
          std::tuple{120.0, 240.0, 35.0}}) {
        sim::DensityMatrix kraus_rho(3), fast_rho(3);
        kraus_rho.run(c, params, x);
        fast_rho.run(c, params, x);

        kraus_rho.apply_kraus_1q(thermal_relaxation_kraus(t1, t2, dur),
                                 2);
        const ThermalParams relax =
            thermal_relaxation_params(t1, t2, dur);
        fast_rho.apply_thermal_relaxation(relax.gamma, relax.lambda, 2);

        for (std::size_t r = 0; r < 8; ++r)
            for (std::size_t cc = 0; cc < 8; ++cc)
                EXPECT_NEAR(std::abs(kraus_rho.element(r, cc) -
                                     fast_rho.element(r, cc)),
                            0.0, 1e-12);
    }
}

TEST(FastChannels, FullDepolarizingIsMaximallyMixed)
{
    sim::DensityMatrix rho(2);
    Circuit c(2);
    c.add_gate(GateKind::H, {0});
    c.add_gate(GateKind::CX, {0, 1});
    rho.run(c);
    rho.apply_depolarizing_1q(0.75, 0); // lambda = 1: full twirl
    rho.apply_depolarizing_1q(0.75, 1);
    const auto probs = rho.probabilities({0, 1});
    for (double p : probs)
        EXPECT_NEAR(p, 0.25, 1e-12);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
}

} // namespace
