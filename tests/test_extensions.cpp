/**
 * @file
 * Extension tests: embedding-angle gradients from the adjoint engine
 * (checked against finite differences), QTN-VQC joint training (the
 * classical frontend must make hard embeddings learnable), and
 * QuantumNAT calibration/normalization (must recover accuracy lost to
 * biased readout noise).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/builders.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "compiler/compile.hpp"
#include "device/device.hpp"
#include "extensions/qtnvqc.hpp"
#include "extensions/quantumnat.hpp"
#include "noise/noise_model.hpp"
#include "qml/synthetic.hpp"
#include "qml/trainer.hpp"
#include "sim/gradients.hpp"

namespace {

using namespace elv;
using namespace elv::circ;
using namespace elv::ext;

TEST(EmbeddingGradients, MatchFiniteDifferences)
{
    Rng rng(1);
    Circuit c(3);
    c.add_embedding(GateKind::RX, {0}, 0);
    c.add_variational(GateKind::RY, {1});
    c.add_gate(GateKind::CX, {0, 1});
    c.add_embedding(GateKind::RZ, {1}, 1);
    c.add_variational(GateKind::U3, {2});
    c.add_gate(GateKind::CZ, {1, 2});
    c.add_embedding(GateKind::RY, {2}, 0); // feature 0 re-uploaded
    c.set_measured({1, 2});

    std::vector<double> params(static_cast<std::size_t>(c.num_params()));
    for (auto &p : params)
        p = rng.uniform(-M_PI, M_PI);
    std::vector<double> x = {0.4, -0.8};

    const auto obs = sim::class_projectors(c.measured(), 2);
    const auto g = sim::adjoint_gradient(c, params, x, obs, true);
    ASSERT_EQ(g.embedding_jacobian.size(), obs.size());
    ASSERT_EQ(g.embedding_jacobian[0].size(), 3u);

    // Finite differences on the *angles*: perturb the feature feeding
    // each embedding op one at a time (distinguishing re-uploads needs
    // per-op perturbation, so rebuild with shifted features per op).
    const auto embed_ops = c.embedding_op_indices();
    const double eps = 1e-6;
    for (std::size_t e = 0; e < embed_ops.size(); ++e) {
        // Use a unique temporary feature index for op e so only that
        // op's angle shifts.
        Circuit shifted = c;
        // (Circuit is immutable here; emulate by constructing x vectors
        // where only this op's angle changes via a dedicated feature.)
        // Instead: rebuild the circuit with op e reading feature 2.
        Circuit rebuilt(3);
        std::size_t count = 0;
        for (const Op &op : c.ops()) {
            if (op.role == ParamRole::Embedding) {
                const int feature =
                    count == e ? 2 : op.data_index;
                rebuilt.add_embedding(op.kind, {op.qubits[0]}, feature);
                ++count;
            } else if (op.role == ParamRole::Variational) {
                rebuilt.add_variational(op.kind, {op.qubits[0]});
            } else {
                rebuilt.add_gate(op.kind,
                                 {op.qubits[0], op.qubits[1]});
            }
        }
        rebuilt.set_measured(c.measured());

        const double base_angle =
            x[static_cast<std::size_t>(c.ops()[embed_ops[e]].data_index)];
        std::vector<double> xp = {x[0], x[1], base_angle + eps};
        std::vector<double> xm = {x[0], x[1], base_angle - eps};
        const auto vp = sim::expectations(rebuilt, params, xp, obs);
        const auto vm = sim::expectations(rebuilt, params, xm, obs);
        for (std::size_t oi = 0; oi < obs.size(); ++oi)
            EXPECT_NEAR(g.embedding_jacobian[oi][e],
                        (vp[oi] - vm[oi]) / (2 * eps), 1e-6)
                << "embedding op " << e << " obs " << oi;
    }
}

TEST(EmbeddingGradients, ProductEmbeddingsRejected)
{
    Circuit c(2);
    c.add_embedding(GateKind::RZ, {0}, 0, 1);
    c.set_measured({0});
    const auto obs = sim::class_projectors(c.measured(), 2);
    EXPECT_THROW(sim::adjoint_gradient(c, {}, {0.1, 0.2}, obs, true),
                 elv::InternalError);
}

TEST(QtnVqcTest, TransformShapeAndDeterminism)
{
    QtnVqcConfig config;
    config.seed = 2;
    const QtnVqc frontend(4, 3, config);
    const auto y1 = frontend.transform({0.1, 0.2, 0.3, 0.4});
    const auto y2 = frontend.transform({0.1, 0.2, 0.3, 0.4});
    ASSERT_EQ(y1.size(), 3u);
    EXPECT_EQ(y1, y2);
}

TEST(QtnVqcTest, JointTrainingLearnsMoons)
{
    const qml::Benchmark bench = qml::make_benchmark("moons", 3, 0.15);
    // A deliberately small circuit: the classical frontend must carry
    // part of the representational load.
    Circuit c(2);
    c.add_embedding(GateKind::RX, {0}, 0);
    c.add_embedding(GateKind::RY, {1}, 1);
    c.add_gate(GateKind::CX, {0, 1});
    c.add_variational(GateKind::RY, {0});
    c.add_variational(GateKind::RY, {1});
    c.set_measured({0});

    QtnVqcConfig config;
    config.epochs = 40;
    config.seed = 4;
    config.hidden = 8;
    QtnVqc frontend(bench.spec.dim, 2, config);
    std::uint64_t executions = 0;
    const auto params =
        frontend.train_joint(c, bench.train, &executions);
    EXPECT_GT(executions, 0u);

    const auto eval = frontend.evaluate(
        c, params, bench.test, qml::statevector_distribution());
    EXPECT_GT(eval.accuracy, 0.8);
}

TEST(QtnVqcTest, FrontendBeatsPlainCircuitOnAverage)
{
    // Same quantum circuit with and without the trainable frontend:
    // QTN-VQC should win (the Fig. 11b direction) on a task whose raw
    // embedding is too weak.
    const qml::Benchmark bench = qml::make_benchmark("bank", 5, 0.1);
    Rng rng(6);
    const Circuit c = build_random_rxyz_cz(3, 4, 8, 1, rng);

    double plain = 0.0, fronted = 0.0;
    for (std::uint64_t seed = 0; seed < 2; ++seed) {
        qml::TrainConfig tc;
        tc.epochs = 25;
        tc.seed = seed;
        const auto trained = qml::train_circuit(c, bench.train, tc);
        plain += qml::evaluate(c, trained.params, bench.test).accuracy;

        QtnVqcConfig qc;
        qc.epochs = 25;
        qc.seed = seed;
        QtnVqc frontend(bench.spec.dim, 4, qc);
        const auto params = frontend.train_joint(c, bench.train);
        fronted += frontend
                       .evaluate(c, params, bench.test,
                                 qml::statevector_distribution())
                       .accuracy;
    }
    EXPECT_GE(fronted, plain - 0.1);
}

TEST(QuantumNatTest, RequiresCalibration)
{
    const QuantumNat nat;
    EXPECT_FALSE(nat.is_calibrated());
    EXPECT_THROW(nat.normalize({0.5, 0.5}), elv::InternalError);
}

TEST(QuantumNatTest, RecoversAccuracyUnderNoise)
{
    const qml::Benchmark bench = qml::make_benchmark("moons", 7, 0.15);
    const dev::Device device = dev::make_device("oqc_lucy");

    // Train a small circuit noiselessly, then route it onto the ring.
    Rng rng(8);
    const Circuit raw = build_random_rxyz_cz(4, 2, 12, 1, rng);
    qml::TrainConfig tc;
    tc.epochs = 30;
    tc.seed = 9;
    const auto trained = qml::train_circuit(raw, bench.train, tc);
    Rng route_rng(80);
    const Circuit logical =
        comp::compile_for_device(raw, device, 3, route_rng).circuit;

    // Noisy inference backend with harsh readout noise.
    const noise::NoisyDensitySimulator noisy(device, 2.0);
    const auto noisy_fn = [&noisy](const Circuit &c,
                                   const std::vector<double> &p,
                                   const std::vector<double> &x) {
        return noisy.run_distribution(c, p, x);
    };

    const auto ideal_acc =
        qml::evaluate(logical, trained.params, bench.test).accuracy;
    const auto noisy_acc =
        qml::evaluate(logical, trained.params, bench.test, noisy_fn)
            .accuracy;

    QuantumNat nat;
    nat.calibrate(logical, trained.params, bench.train, noisy_fn,
                  qml::statevector_distribution());
    const auto mitigated =
        nat.evaluate(logical, trained.params, bench.test, noisy_fn);

    // Normalization must not hurt and should close part of the
    // ideal-noisy gap.
    EXPECT_GE(mitigated.accuracy + 1e-9, noisy_acc);
    EXPECT_LE(mitigated.accuracy, ideal_acc + 0.1);
}

TEST(QuantumNatTest, NormalizationIsMonotoneInProbability)
{
    QuantumNat nat;
    const qml::Benchmark bench = qml::make_benchmark("moons", 10, 0.05);
    Rng rng(11);
    Circuit c = build_random_rxyz_cz(2, 2, 4, 1, rng);
    qml::TrainConfig tc;
    tc.epochs = 2;
    tc.seed = 12;
    const auto trained = qml::train_circuit(c, bench.train, tc);
    nat.calibrate(c, trained.params, bench.train,
                  qml::statevector_distribution(),
                  qml::statevector_distribution());
    // With identical providers, normalization preserves score ordering
    // within each class column.
    const auto s1 = nat.normalize({0.3, 0.7});
    const auto s2 = nat.normalize({0.6, 0.4});
    EXPECT_GT(s2[0], s1[0]);
    EXPECT_LT(s2[1], s1[1]);
}

} // namespace
