/**
 * @file
 * Compiler tests: pass correctness (SWAP decomposition and cancellation
 * preserve semantics), SABRE routing validity (all 2-qubit gates
 * coupled, semantics preserved up to qubit relocation), optimization
 * level monotonicity, and circuit statistics.
 */
#include <gtest/gtest.h>

#include "circuit/builders.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "compiler/compile.hpp"
#include "compiler/passes.hpp"
#include "compiler/sabre.hpp"
#include "device/device.hpp"
#include "sim/statevector.hpp"

namespace {

using namespace elv;
using namespace elv::circ;
using namespace elv::comp;

/** Output distribution of a circuit over its measured qubits. */
std::vector<double>
distribution(const Circuit &c, const std::vector<double> &params = {},
             const std::vector<double> &x = {})
{
    std::vector<int> kept;
    const Circuit local = c.compacted(kept);
    sim::StateVector psi(local.num_qubits());
    psi.run(local, params, x);
    return psi.probabilities(local.measured());
}

TEST(Passes, SwapDecompositionPreservesSemantics)
{
    Rng rng(1);
    Circuit c(3);
    c.add_gate(GateKind::H, {0});
    c.add_variational(GateKind::RY, {1});
    c.add_gate(GateKind::SWAP, {0, 2});
    c.add_gate(GateKind::CX, {2, 1});
    c.set_measured({0, 1, 2});

    const Circuit lowered = decompose_swaps(c);
    EXPECT_EQ(lowered.count_kind(GateKind::SWAP), 0);
    EXPECT_EQ(lowered.count_kind(GateKind::CX), 4);

    const std::vector<double> params = {0.8};
    const auto p1 = distribution(c, params);
    const auto p2 = distribution(lowered, params);
    for (std::size_t i = 0; i < p1.size(); ++i)
        EXPECT_NEAR(p1[i], p2[i], 1e-12);
}

TEST(Passes, CancelAdjacentInversePairs)
{
    Circuit c(2);
    c.add_gate(GateKind::H, {0});
    c.add_gate(GateKind::H, {0});
    c.add_gate(GateKind::CX, {0, 1});
    c.add_gate(GateKind::CX, {0, 1});
    c.add_gate(GateKind::S, {1});
    c.add_gate(GateKind::Sdg, {1});
    c.add_gate(GateKind::X, {0});
    c.set_measured({0, 1});

    const Circuit reduced = cancel_to_fixpoint(c);
    EXPECT_EQ(reduced.ops().size(), 1u);
    EXPECT_EQ(reduced.ops()[0].kind, GateKind::X);
}

TEST(Passes, CancellationRespectsBlockingOps)
{
    Circuit c(2);
    c.add_gate(GateKind::H, {0});
    c.add_gate(GateKind::X, {0}); // blocks the H-H pair
    c.add_gate(GateKind::H, {0});
    c.set_measured({0});
    const Circuit reduced = cancel_to_fixpoint(c);
    EXPECT_EQ(reduced.ops().size(), 3u);
}

TEST(Passes, CancellationHandlesSymmetricGates)
{
    Circuit c(2);
    c.add_gate(GateKind::CZ, {0, 1});
    c.add_gate(GateKind::CZ, {1, 0}); // same gate, operands swapped
    c.set_measured({0});
    const Circuit reduced = cancel_to_fixpoint(c);
    EXPECT_EQ(reduced.ops().size(), 0u);
}

TEST(Passes, CancellationCascades)
{
    Circuit c(1);
    c.add_gate(GateKind::H, {0});
    c.add_gate(GateKind::X, {0});
    c.add_gate(GateKind::X, {0});
    c.add_gate(GateKind::H, {0});
    c.set_measured({0});
    EXPECT_EQ(cancel_to_fixpoint(c).ops().size(), 0u);
}

TEST(Passes, CancellationPreservesSemantics)
{
    Rng rng(5);
    Circuit c = build_random_rxyz_cz(4, 4, 10, 2, rng);
    // Sprinkle removable pairs into a copy.
    Circuit noisy(4);
    for (const Op &op : c.ops()) {
        if (op.role == ParamRole::Variational)
            noisy.add_variational(op.kind, {op.qubits[0]});
        else if (op.role == ParamRole::Embedding)
            noisy.add_embedding(op.kind, {op.qubits[0]}, op.data_index);
        else
            noisy.add_gate(op.kind, {op.qubits[0], op.qubits[1]});
        if (rng.bernoulli(0.3)) {
            const int q = static_cast<int>(rng.uniform_index(4));
            noisy.add_gate(GateKind::H, {q});
            noisy.add_gate(GateKind::H, {q});
        }
    }
    noisy.set_measured(c.measured());

    const Circuit reduced = cancel_to_fixpoint(noisy);
    EXPECT_LT(reduced.ops().size(), noisy.ops().size());

    std::vector<double> params(10);
    for (auto &p : params)
        p = rng.uniform(-M_PI, M_PI);
    const std::vector<double> x = {0.3, -0.2, 0.9, 0.5};
    const auto p1 = distribution(noisy, params, x);
    const auto p2 = distribution(reduced, params, x);
    for (std::size_t i = 0; i < p1.size(); ++i)
        EXPECT_NEAR(p1[i], p2[i], 1e-10);
}

TEST(Passes, StatsCountDecompositions)
{
    Circuit c(3);
    c.add_gate(GateKind::SWAP, {0, 1});
    c.add_variational(GateKind::CRY, {1, 2});
    c.add_gate(GateKind::H, {0});
    const CircuitStats stats = circuit_stats(c);
    EXPECT_EQ(stats.gates_2q, 5); // 3 (SWAP) + 2 (CRY)
    EXPECT_EQ(stats.gates_1q, 3); // H + 2 (CRY)
}

class SabreRouting : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SabreRouting, ProducesValidHardwareNativeCircuit)
{
    Rng rng(GetParam());
    const dev::Device device = dev::make_device("ibmq_jakarta");
    // A logical circuit with all-to-all connectivity assumptions.
    Circuit logical = build_random_rxyz_cz(5, 4, 12, 2, rng);
    logical.add_gate(GateKind::CX, {0, 4});
    logical.add_gate(GateKind::CX, {1, 3});

    const RouteResult routed =
        sabre_route(logical, device.topology, rng);
    EXPECT_TRUE(is_hardware_native(routed.circuit, device.topology));
    EXPECT_EQ(routed.circuit.measured().size(), 2u);

    // Every logical 2q interaction still exists (op count preserved up
    // to inserted SWAPs).
    EXPECT_EQ(routed.circuit.ops().size(),
              logical.ops().size() +
                  static_cast<std::size_t>(routed.swaps_inserted));
}

TEST_P(SabreRouting, PreservesSemantics)
{
    Rng rng(GetParam() + 100);
    const dev::Device device = dev::make_device("ibmq_jakarta");
    Circuit logical = build_random_rxyz_cz(4, 3, 8, 2, rng);
    logical.add_gate(GateKind::CX, {0, 3});
    logical.add_gate(GateKind::CZ, {1, 3});

    std::vector<double> params(8);
    for (auto &p : params)
        p = rng.uniform(-M_PI, M_PI);
    const std::vector<double> x = {0.4, -0.7, 1.1};

    const auto ideal = distribution(logical, params, x);
    const RouteResult routed =
        sabre_route(logical, device.topology, rng);
    const auto mapped = distribution(routed.circuit, params, x);
    ASSERT_EQ(ideal.size(), mapped.size());
    for (std::size_t i = 0; i < ideal.size(); ++i)
        EXPECT_NEAR(ideal[i], mapped[i], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SabreRouting,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Sabre, NoSwapsWhenCircuitFitsTopology)
{
    Rng rng(9);
    const dev::Topology line = dev::line_topology(4);
    Circuit c(4);
    c.add_gate(GateKind::CX, {0, 1});
    c.add_gate(GateKind::CX, {1, 2});
    c.add_gate(GateKind::CX, {2, 3});
    c.set_measured({3});
    const RouteResult routed = sabre_route(c, line, rng, {});
    EXPECT_EQ(routed.swaps_inserted, 0);
}

TEST(Sabre, RoutesLongRangeOnLine)
{
    Rng rng(10);
    const dev::Topology line = dev::line_topology(5);
    Circuit c(5);
    c.add_gate(GateKind::CX, {0, 4});
    c.set_measured({0, 4});
    SabreOptions opt;
    opt.trials = 4;
    const RouteResult routed = sabre_route(c, line, rng, opt);
    EXPECT_TRUE(is_hardware_native(routed.circuit, line));
    // Any valid routing of one long-range CX on a 5-line needs SWAPs
    // unless the mapping places the logical endpoints adjacently — with
    // only one 2q gate SABRE's refinement should find that.
    EXPECT_LE(routed.swaps_inserted, 3);
}

TEST(Compile, LevelsReduceGateCountsOnAverage)
{
    // Higher optimization levels run more SABRE trials and cancel to a
    // fixpoint; individual instances can still vary, so compare means.
    const dev::Device device = dev::make_device("ibm_guadalupe");
    double total_low = 0.0, total_high = 0.0;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        Rng gen(11 + seed);
        Circuit logical = build_random_rxyz_cz(6, 4, 24, 2, gen);
        for (int i = 0; i < 4; ++i) {
            const int a = static_cast<int>(gen.uniform_index(6));
            int b = static_cast<int>(gen.uniform_index(5));
            if (b >= a)
                ++b;
            logical.add_gate(GateKind::CX, {a, b});
        }
        Rng rng0(42), rng3(42);
        const CompileResult low =
            compile_for_device(logical, device, 0, rng0);
        const CompileResult high =
            compile_for_device(logical, device, 3, rng3);
        EXPECT_TRUE(is_hardware_native(low.circuit, device.topology));
        EXPECT_TRUE(is_hardware_native(high.circuit, device.topology));
        total_low += low.stats.gates_2q;
        total_high += high.stats.gates_2q;
    }
    EXPECT_LE(total_high, total_low);
}

TEST(Compile, NativeCircuitSkipsRouting)
{
    Rng rng(12);
    const dev::Device device = dev::make_device("ibmq_jakarta");
    Circuit physical(7);
    physical.add_gate(GateKind::CX, {1, 3});
    physical.add_gate(GateKind::CX, {3, 5});
    physical.set_measured({5});
    const CompileResult out =
        compile_for_device(physical, device, 0, rng);
    EXPECT_EQ(out.swaps_inserted, 0);
    EXPECT_EQ(out.circuit.ops().size(), 2u);
    EXPECT_EQ(out.circuit.ops()[0].qubits[0], 1); // labels preserved
}

} // namespace
