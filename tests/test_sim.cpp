/**
 * @file
 * Tests for the simulators: gate unitarity, canonical states, observable
 * expectations, agreement of adjoint / parameter-shift / finite-difference
 * gradients, density-matrix vs state-vector consistency, Kraus map trace
 * preservation, and Clifford-replica lowering correctness.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "circuit/builders.hpp"
#include "circuit/clifford_replica.hpp"
#include "common/aligned.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "sim/cpu_features.hpp"
#include "sim/density_matrix.hpp"
#include "sim/gradients.hpp"
#include "sim/observable.hpp"
#include "sim/statevector.hpp"

namespace {

using namespace elv;
using namespace elv::circ;
using namespace elv::sim;

bool
is_unitary2(const Mat2 &u)
{
    const Mat2 p = matmul(u, dagger(u));
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j)
            if (std::abs(p[i][j] - (i == j ? Amp(1) : Amp(0))) > 1e-12)
                return false;
    return true;
}

bool
is_unitary4(const Mat4 &u)
{
    const Mat4 p = matmul(u, dagger(u));
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            if (std::abs(p[i][j] - (i == j ? Amp(1) : Amp(0))) > 1e-12)
                return false;
    return true;
}

TEST(Unitaries, AllGatesAreUnitary)
{
    const std::array<double, 3> angles = {0.7, -1.3, 2.1};
    for (GateKind kind : {GateKind::RX, GateKind::RY, GateKind::RZ,
                          GateKind::U3, GateKind::H, GateKind::S,
                          GateKind::Sdg, GateKind::X, GateKind::Y,
                          GateKind::Z})
        EXPECT_TRUE(is_unitary2(gate_matrix_1q(kind, angles)))
            << gate_name(kind);
    for (GateKind kind : {GateKind::CX, GateKind::CZ, GateKind::SWAP,
                          GateKind::CRY})
        EXPECT_TRUE(is_unitary4(gate_matrix_2q(kind, angles)))
            << gate_name(kind);
}

TEST(Unitaries, DerivativesMatchFiniteDifference)
{
    const double eps = 1e-6;
    const std::array<double, 3> a = {0.4, 1.1, -0.8};
    for (GateKind kind : {GateKind::RX, GateKind::RY, GateKind::RZ,
                          GateKind::U3}) {
        const int np = gate_num_params(kind);
        for (int slot = 0; slot < np; ++slot) {
            auto ap = a, am = a;
            ap[slot] += eps;
            am[slot] -= eps;
            const Mat2 up = gate_matrix_1q(kind, ap);
            const Mat2 um = gate_matrix_1q(kind, am);
            const Mat2 d = gate_matrix_1q_deriv(kind, a, slot);
            for (int i = 0; i < 2; ++i)
                for (int j = 0; j < 2; ++j)
                    EXPECT_NEAR(std::abs(d[i][j] -
                                         (up[i][j] - um[i][j]) /
                                             (2 * eps)),
                                0.0, 1e-7)
                        << gate_name(kind) << " slot " << slot;
        }
    }
    // CRY derivative.
    auto ap = a, am = a;
    ap[0] += eps;
    am[0] -= eps;
    const Mat4 up = gate_matrix_2q(GateKind::CRY, ap);
    const Mat4 um = gate_matrix_2q(GateKind::CRY, am);
    const Mat4 d = gate_matrix_2q_deriv(GateKind::CRY, a, 0);
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            EXPECT_NEAR(std::abs(d[i][j] - (up[i][j] - um[i][j]) /
                                               (2 * eps)),
                        0.0, 1e-7);
}

TEST(StateVector, BellState)
{
    Circuit c(2);
    c.add_gate(GateKind::H, {0});
    c.add_gate(GateKind::CX, {0, 1});
    StateVector psi(2);
    psi.run(c);
    EXPECT_NEAR(std::abs(psi.amp(0)), 1 / std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(std::abs(psi.amp(3)), 1 / std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(std::abs(psi.amp(1)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(psi.amp(2)), 0.0, 1e-12);
    EXPECT_NEAR(psi.norm(), 1.0, 1e-12);
}

TEST(StateVector, CxControlTargetOrder)
{
    // CX with control q0=1: X|0> on qubit 0 -> |..1>, then CX(0 -> 1).
    Circuit c(2);
    c.add_gate(GateKind::X, {0});
    c.add_gate(GateKind::CX, {0, 1});
    StateVector psi(2);
    psi.run(c);
    // Expect |11> = index 3 (bit0 = qubit0, bit1 = qubit1).
    EXPECT_NEAR(std::abs(psi.amp(3)), 1.0, 1e-12);

    // Control in |0> leaves target alone.
    Circuit c2(2);
    c2.add_gate(GateKind::CX, {0, 1});
    psi.run(c2);
    EXPECT_NEAR(std::abs(psi.amp(0)), 1.0, 1e-12);
}

TEST(StateVector, RotationExpectations)
{
    // RX(theta) on |0>: <Z> = cos(theta).
    for (double theta : {0.0, 0.3, 1.2, M_PI / 2, 2.5}) {
        Circuit c(1);
        c.add_variational(GateKind::RX, {0});
        StateVector psi(1);
        psi.run(c, {theta});
        EXPECT_NEAR(psi.expect_z(0), std::cos(theta), 1e-12);
    }
}

TEST(StateVector, SwapMovesAmplitude)
{
    Circuit c(2);
    c.add_gate(GateKind::X, {0});
    c.add_gate(GateKind::SWAP, {0, 1});
    StateVector psi(2);
    psi.run(c);
    EXPECT_NEAR(std::abs(psi.amp(2)), 1.0, 1e-12); // |q1=1, q0=0>
}

TEST(StateVector, AmplitudeEmbeddingNormalizes)
{
    StateVector psi(2);
    psi.set_amplitude_embedding({3.0, 0.0, 4.0});
    EXPECT_NEAR(std::abs(psi.amp(0)), 0.6, 1e-12);
    EXPECT_NEAR(std::abs(psi.amp(2)), 0.8, 1e-12);
    EXPECT_NEAR(psi.norm(), 1.0, 1e-12);
}

TEST(StateVector, MarginalProbabilities)
{
    Circuit c(3);
    c.add_gate(GateKind::H, {0});
    c.add_gate(GateKind::CX, {0, 2});
    StateVector psi(3);
    psi.run(c);
    const auto p = psi.probabilities({0, 2});
    ASSERT_EQ(p.size(), 4u);
    EXPECT_NEAR(p[0], 0.5, 1e-12); // 00
    EXPECT_NEAR(p[3], 0.5, 1e-12); // 11
    const auto pz = psi.probabilities({1});
    EXPECT_NEAR(pz[0], 1.0, 1e-12);
}

TEST(StateVector, SamplingMatchesBornRule)
{
    Circuit c(1);
    c.add_variational(GateKind::RY, {0});
    StateVector psi(1);
    psi.run(c, {2.0 * std::acos(std::sqrt(0.3))}); // P(0) = 0.3
    Rng rng(99);
    int zeros = 0;
    for (int i = 0; i < 20000; ++i)
        zeros += psi.sample({0}, rng) == 0;
    EXPECT_NEAR(zeros / 20000.0, 0.3, 0.02);
}

TEST(Observable, PauliZAndGroups)
{
    StateVector psi(2);
    Circuit c(2);
    c.add_gate(GateKind::X, {1});
    psi.run(c);
    EXPECT_DOUBLE_EQ(DiagonalObservable::pauli_z(0).expectation(psi), 1.0);
    EXPECT_DOUBLE_EQ(DiagonalObservable::pauli_z(1).expectation(psi), -1.0);

    const auto projs = class_projectors({0, 1}, 2);
    // State |q1 q0> = |10> -> outcome 2 -> group 0.
    EXPECT_DOUBLE_EQ(projs[0].expectation(psi), 1.0);
    EXPECT_DOUBLE_EQ(projs[1].expectation(psi), 0.0);
}

TEST(Observable, GroupProjectorsPartitionUnity)
{
    Rng rng(17);
    Circuit c = build_random_rxyz_cz(3, 3, 9, 3, rng);
    std::vector<double> params(9), x = {0.2, -1.0, 0.7};
    for (auto &p : params)
        p = rng.uniform(-M_PI, M_PI);
    const auto projs = class_projectors(c.measured(), 3);
    const auto vals = expectations(c, params, x, projs);
    double total = 0.0;
    for (double v : vals) {
        EXPECT_GE(v, -1e-12);
        total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-10);
}

class GradientAgreement : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(GradientAgreement, AdjointMatchesShiftAndFiniteDifference)
{
    Rng rng(GetParam());
    Circuit c(3);
    append_angle_embedding(c, 3);
    c.add_variational(GateKind::U3, {0});
    c.add_gate(GateKind::CX, {0, 1});
    c.add_variational(GateKind::RY, {1});
    c.add_variational(GateKind::CRY, {1, 2});
    c.add_gate(GateKind::CZ, {0, 2});
    c.add_variational(GateKind::RZ, {2});
    c.add_variational(GateKind::RX, {0});
    c.set_measured({0, 2});

    std::vector<double> params(static_cast<std::size_t>(c.num_params()));
    for (auto &p : params)
        p = rng.uniform(-M_PI, M_PI);
    const std::vector<double> x = {rng.uniform(-1, 1), rng.uniform(-1, 1),
                                   rng.uniform(-1, 1)};

    const auto obs = class_projectors(c.measured(), 2);
    const auto adj = adjoint_gradient(c, params, x, obs);
    const auto shift = parameter_shift_gradient(c, params, x, obs);

    ASSERT_EQ(adj.values.size(), shift.values.size());
    for (std::size_t oi = 0; oi < obs.size(); ++oi) {
        EXPECT_NEAR(adj.values[oi], shift.values[oi], 1e-10);
        for (std::size_t pi = 0; pi < params.size(); ++pi)
            EXPECT_NEAR(adj.jacobian[oi][pi], shift.jacobian[oi][pi],
                        1e-9)
                << "obs " << oi << " param " << pi;
    }

    // Finite differences as independent ground truth.
    const double eps = 1e-6;
    for (std::size_t pi = 0; pi < params.size(); ++pi) {
        auto pp = params, pm = params;
        pp[pi] += eps;
        pm[pi] -= eps;
        const auto vp = expectations(c, pp, x, obs);
        const auto vm = expectations(c, pm, x, obs);
        for (std::size_t oi = 0; oi < obs.size(); ++oi)
            EXPECT_NEAR(adj.jacobian[oi][pi],
                        (vp[oi] - vm[oi]) / (2 * eps), 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GradientAgreement,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Gradients, ParameterShiftCountsExecutions)
{
    Circuit c(2);
    c.add_variational(GateKind::RX, {0});
    c.add_variational(GateKind::RY, {1});
    c.set_measured({0});
    const auto obs = class_projectors(c.measured(), 2);
    const auto res =
        parameter_shift_gradient(c, {0.1, 0.2}, {}, obs);
    // 1 base + 2 shifts per parameter.
    EXPECT_EQ(res.circuit_executions, 5u);

    const auto adj = adjoint_gradient(c, {0.1, 0.2}, {}, obs);
    EXPECT_EQ(adj.circuit_executions, 1u);
}

TEST(DensityMatrix, MatchesStateVectorNoiseless)
{
    Rng rng(23);
    Circuit c = build_random_rxyz_cz(4, 4, 12, 2, rng);
    std::vector<double> params(12);
    for (auto &p : params)
        p = rng.uniform(-M_PI, M_PI);
    const std::vector<double> x = {0.1, -0.5, 0.8, 1.4};

    StateVector psi(4);
    psi.run(c, params, x);
    DensityMatrix rho(4);
    rho.run(c, params, x);

    EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
    EXPECT_NEAR(rho.purity(), 1.0, 1e-10);
    const auto pv = psi.probabilities(c.measured());
    const auto pd = rho.probabilities(c.measured());
    ASSERT_EQ(pv.size(), pd.size());
    for (std::size_t i = 0; i < pv.size(); ++i)
        EXPECT_NEAR(pv[i], pd[i], 1e-10);
}

TEST(DensityMatrix, DepolarizingKrausIsTracePreserving)
{
    const double p = 0.1;
    const double s = std::sqrt(p / 3.0);
    const std::array<double, 3> no_angles = {0, 0, 0};
    std::vector<Mat2> kraus;
    Mat2 k0 = identity2();
    k0[0][0] *= std::sqrt(1 - p);
    k0[1][1] *= std::sqrt(1 - p);
    kraus.push_back(k0);
    for (GateKind pk : {GateKind::X, GateKind::Y, GateKind::Z}) {
        Mat2 k = gate_matrix_1q(pk, no_angles);
        for (auto &row : k)
            for (auto &e : row)
                e *= s;
        kraus.push_back(k);
    }

    DensityMatrix rho(2);
    Circuit c(2);
    c.add_gate(GateKind::H, {0});
    c.add_gate(GateKind::CX, {0, 1});
    rho.run(c);
    rho.apply_kraus_1q(kraus, 0);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
    EXPECT_LT(rho.purity(), 1.0);
}

TEST(DensityMatrix, AmplitudeEmbeddingAsPureState)
{
    DensityMatrix rho(2);
    Circuit c(2);
    c.add_amplitude_embedding();
    rho.run(c, {}, {1.0, 1.0, 1.0, 1.0});
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
    const auto p = rho.probabilities({0, 1});
    for (double v : p)
        EXPECT_NEAR(v, 0.25, 1e-12);
}

TEST(CliffordLowering, NearestReplicaMatchesSnappedRotations)
{
    // Build a circuit with rotation angles already at Clifford values;
    // its Nearest-mode replica must produce the identical distribution.
    Rng rng(31);
    for (int trial = 0; trial < 10; ++trial) {
        Circuit c(3);
        c.add_variational(GateKind::RX, {0});
        c.add_variational(GateKind::RY, {1});
        c.add_variational(GateKind::RZ, {2});
        c.add_gate(GateKind::CX, {0, 1});
        c.add_variational(GateKind::U3, {2});
        c.add_gate(GateKind::CZ, {1, 2});
        c.add_variational(GateKind::CRY, {0, 2});
        c.set_measured({0, 1, 2});

        std::vector<double> params(
            static_cast<std::size_t>(c.num_params()));
        for (std::size_t i = 0; i < params.size(); ++i)
            params[i] = (M_PI / 2.0) *
                        static_cast<double>(rng.uniform_index(4));
        // CRY angle must be a multiple of pi to stay Clifford.
        params.back() = M_PI * static_cast<double>(rng.uniform_index(2));

        const Circuit replica = make_clifford_replica(
            c, rng, ReplicaMode::Nearest, params, {});
        ASSERT_TRUE(is_clifford_circuit(replica));

        StateVector direct(3), lowered(3);
        direct.run(c, params, {});
        lowered.run(replica);
        const auto p1 = direct.probabilities(c.measured());
        const auto p2 = lowered.probabilities(replica.measured());
        for (std::size_t i = 0; i < p1.size(); ++i)
            EXPECT_NEAR(p1[i], p2[i], 1e-10) << "trial " << trial;
    }
}

TEST(CliffordLowering, RandomReplicaDistributionIsValid)
{
    Rng rng(37);
    Circuit c(4);
    append_angle_embedding(c, 4);
    c.add_variational(GateKind::RY, {1});
    c.add_gate(GateKind::CX, {1, 2});
    c.add_variational(GateKind::U3, {3});
    c.set_measured({1, 2, 3});
    for (int i = 0; i < 5; ++i) {
        const Circuit replica = make_clifford_replica(c, rng);
        StateVector psi(4);
        psi.run(replica);
        const auto p = psi.probabilities(replica.measured());
        double total = 0.0;
        for (double v : p)
            total += v;
        EXPECT_NEAR(total, 1.0, 1e-10);
    }
}

/** Gate-identity property sweep: algebraic identities the gate set must
 * satisfy, checked as full-state equalities on random inputs. */
class GateIdentities : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    /** Random 2-qubit state prepared by a random circuit. */
    StateVector
    random_state(Rng &rng) const
    {
        StateVector psi(2);
        Circuit prep = build_random_rxyz_cz(2, 2, 6, 1, rng);
        std::vector<double> params(6);
        for (auto &p : params)
            p = rng.uniform(-M_PI, M_PI);
        psi.run(prep, params, {0.3, -0.8});
        return psi;
    }

    static void
    expect_equal(const StateVector &a, const StateVector &b)
    {
        EXPECT_NEAR(a.overlap(b), 1.0, 1e-10);
    }
};

TEST_P(GateIdentities, HzhIsX)
{
    Rng rng(GetParam());
    StateVector a = random_state(rng);
    StateVector b = a;
    const std::array<double, 3> no_angles = {0, 0, 0};
    a.apply_1q(gate_matrix_1q(GateKind::H, no_angles), 0);
    a.apply_1q(gate_matrix_1q(GateKind::Z, no_angles), 0);
    a.apply_1q(gate_matrix_1q(GateKind::H, no_angles), 0);
    b.apply_1q(gate_matrix_1q(GateKind::X, no_angles), 0);
    expect_equal(a, b);
}

TEST_P(GateIdentities, SSquaredIsZ)
{
    Rng rng(GetParam() + 50);
    StateVector a = random_state(rng);
    StateVector b = a;
    const std::array<double, 3> no_angles = {0, 0, 0};
    a.apply_1q(gate_matrix_1q(GateKind::S, no_angles), 1);
    a.apply_1q(gate_matrix_1q(GateKind::S, no_angles), 1);
    b.apply_1q(gate_matrix_1q(GateKind::Z, no_angles), 1);
    expect_equal(a, b);
}

TEST_P(GateIdentities, CzIsSymmetric)
{
    Rng rng(GetParam() + 100);
    StateVector a = random_state(rng);
    StateVector b = a;
    const std::array<double, 3> no_angles = {0, 0, 0};
    a.apply_2q(gate_matrix_2q(GateKind::CZ, no_angles), 0, 1);
    b.apply_2q(gate_matrix_2q(GateKind::CZ, no_angles), 1, 0);
    expect_equal(a, b);
}

TEST_P(GateIdentities, SwapIsThreeCx)
{
    Rng rng(GetParam() + 150);
    StateVector a = random_state(rng);
    StateVector b = a;
    const std::array<double, 3> no_angles = {0, 0, 0};
    a.apply_2q(gate_matrix_2q(GateKind::SWAP, no_angles), 0, 1);
    b.apply_2q(gate_matrix_2q(GateKind::CX, no_angles), 0, 1);
    b.apply_2q(gate_matrix_2q(GateKind::CX, no_angles), 1, 0);
    b.apply_2q(gate_matrix_2q(GateKind::CX, no_angles), 0, 1);
    expect_equal(a, b);
}

TEST_P(GateIdentities, RotationsComposeAdditively)
{
    Rng rng(GetParam() + 200);
    const double t1 = rng.uniform(-M_PI, M_PI);
    const double t2 = rng.uniform(-M_PI, M_PI);
    for (GateKind kind : {GateKind::RX, GateKind::RY, GateKind::RZ}) {
        StateVector a = random_state(rng);
        StateVector b = a;
        a.apply_1q(gate_matrix_1q(kind, {t1, 0, 0}), 0);
        a.apply_1q(gate_matrix_1q(kind, {t2, 0, 0}), 0);
        b.apply_1q(gate_matrix_1q(kind, {t1 + t2, 0, 0}), 0);
        expect_equal(a, b);
    }
}

TEST_P(GateIdentities, UnitaryEvolutionPreservesNorm)
{
    Rng rng(GetParam() + 250);
    Circuit c = build_random_rxyz_cz(4, 3, 20, 2, rng);
    std::vector<double> params(20);
    for (auto &p : params)
        p = rng.uniform(-M_PI, M_PI);
    StateVector psi(4);
    psi.run(c, params, {0.1, 0.2, -0.3});
    EXPECT_NEAR(psi.norm(), 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GateIdentities,
                         ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------------------
// Aligned amplitude storage.

static_assert(std::is_same_v<AmpVector<double>::allocator_type,
                             AlignedAllocator<std::complex<double>>>,
              "state storage must use the over-aligned allocator");
static_assert(
    std::is_same_v<
        AlignedAllocator<std::complex<double>>::rebind<float>::other,
        AlignedAllocator<float, 64>>,
    "rebinding must preserve the 64-byte alignment");
static_assert(std::is_same_v<AlignedAllocator<double, 64>::value_type,
                             double>,
              "allocator value_type mismatch");

bool
is_64_byte_aligned(const void *p)
{
    return reinterpret_cast<std::uintptr_t>(p) % 64 == 0;
}

TEST(AlignedStorage, AmplitudesStartOn64ByteBoundary)
{
    for (int n = 1; n <= 10; ++n) {
        StateVector psi(n);
        EXPECT_TRUE(is_64_byte_aligned(psi.amps().data())) << n;
        StateVectorF psif(n);
        EXPECT_TRUE(is_64_byte_aligned(psif.amps().data())) << n;
    }
    // Copies allocate fresh storage; alignment must survive.
    StateVector a(6);
    StateVector b = a;
    EXPECT_TRUE(is_64_byte_aligned(b.amps().data()));
}

TEST(AlignedStorage, AllocatorRoundsOddSizesUp)
{
    AlignedAllocator<std::complex<float>> alloc;
    for (std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                          std::size_t{129}}) {
        std::complex<float> *p = alloc.allocate(n);
        EXPECT_TRUE(is_64_byte_aligned(p)) << n;
        alloc.deallocate(p, n);
    }
    EXPECT_TRUE(alloc == AlignedAllocator<std::complex<float>>{});
    EXPECT_FALSE(alloc != AlignedAllocator<std::complex<float>>{});
}

// ---------------------------------------------------------------------------
// Kernel-tier dispatch: override API and cross-tier bit-identity.

/** Restores the process-wide dispatch state on scope exit. */
struct TierGuard
{
    ~TierGuard() { clear_forced_tier(); }
};

TEST(KernelDispatch, TierNamesRoundTrip)
{
    for (KernelTier tier :
         {KernelTier::Baseline, KernelTier::AVX2, KernelTier::AVX512}) {
        const auto parsed = kernel_tier_from_name(kernel_tier_name(tier));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, tier);
    }
    EXPECT_FALSE(kernel_tier_from_name("sse").has_value());
    EXPECT_FALSE(kernel_tier_from_name("").has_value());
    EXPECT_FALSE(kernel_tier_from_name("AVX2 ").has_value());
}

TEST(KernelDispatch, ForcedTierClampsToSupported)
{
    TierGuard guard;
    const KernelTier best = best_supported_tier();

    set_forced_tier(KernelTier::Baseline);
    EXPECT_EQ(active_tier(), KernelTier::Baseline);

    // Requesting more than the CPU has clamps instead of crashing.
    set_forced_tier(KernelTier::AVX512);
    EXPECT_LE(static_cast<int>(active_tier()), static_cast<int>(best));

    clear_forced_tier();
    EXPECT_LE(static_cast<int>(active_tier()), static_cast<int>(best));
}

/** Deterministic dense matrix for kernel equivalence (need not be unitary —
 *  bit-identity must hold for any finite inputs). */
template <typename Mat>
Mat
random_matrix(Rng &rng)
{
    Mat m;
    for (auto &row : m)
        for (auto &e : row)
            e = Amp(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    return m;
}

/**
 * Run a gate sequence covering every vectorized kernel (generic 1q/2q/4q,
 * CX/CZ/SWAP permutation paths, the diagonal fast path) under a forced
 * tier and return the final amplitudes.
 */
template <typename T>
AmpVector<T>
run_kernel_gauntlet(int num_qubits, KernelTier tier, unsigned seed)
{
    set_forced_tier(tier);
    Rng rng(seed);
    Circuit c = build_random_rxyz_cz(num_qubits, num_qubits,
                                     3 * num_qubits, 2, rng);
    std::vector<double> params(static_cast<std::size_t>(3 * num_qubits));
    for (auto &p : params)
        p = rng.uniform(-M_PI, M_PI);
    std::vector<double> x(static_cast<std::size_t>(num_qubits));
    for (auto &v : x)
        v = rng.uniform(-1.0, 1.0);

    BasicStateVector<T> psi(num_qubits);
    psi.run(c, params, x);
    psi.apply_cx(0, num_qubits - 1);
    psi.apply_cz(num_qubits - 1, 0);
    if (num_qubits >= 3)
        psi.apply_swap(1, num_qubits - 1);
    psi.apply_diag_1q(Amp(0.6, -0.8), Amp(std::cos(0.3), std::sin(0.3)),
                      num_qubits / 2);
    psi.apply_1q(random_matrix<Mat2>(rng), 0);
    psi.apply_2q(random_matrix<Mat4>(rng), num_qubits - 1, 0);
    if (num_qubits >= 4)
        psi.apply_4q(random_matrix<Mat16>(rng), 0, 1, num_qubits - 2,
                     num_qubits - 1);
    return psi.amps();
}

template <typename T>
void
expect_bit_identical(const AmpVector<T> &a, const AmpVector<T> &b)
{
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          a.size() * sizeof(std::complex<T>)),
              0);
}

TEST(KernelDispatch, StateVectorTiersBitIdentical)
{
    TierGuard guard;
    const int best = static_cast<int>(best_supported_tier());
    for (int n : {2, 3, 5, 8}) {
        const auto scalar =
            run_kernel_gauntlet<double>(n, KernelTier::Baseline, 77u + n);
        for (int t = 1; t <= best; ++t) {
            const auto vec = run_kernel_gauntlet<double>(
                n, static_cast<KernelTier>(t), 77u + n);
            expect_bit_identical(scalar, vec);
        }
    }
}

TEST(KernelDispatch, FloatStateVectorTiersBitIdentical)
{
    TierGuard guard;
    const int best = static_cast<int>(best_supported_tier());
    for (int n : {2, 4, 8}) {
        const auto scalar =
            run_kernel_gauntlet<float>(n, KernelTier::Baseline, 31u + n);
        for (int t = 1; t <= best; ++t) {
            const auto vec = run_kernel_gauntlet<float>(
                n, static_cast<KernelTier>(t), 31u + n);
            expect_bit_identical(scalar, vec);
        }
    }
}

/** Density-matrix pipeline (gates + channels + superops) under one tier. */
DensityMatrix
run_channel_gauntlet(KernelTier tier, unsigned seed)
{
    set_forced_tier(tier);
    const int n = 3;
    Rng rng(seed);
    Circuit c = build_random_rxyz_cz(n, n, 3 * n, 2, rng);
    std::vector<double> params(static_cast<std::size_t>(3 * n));
    for (auto &p : params)
        p = rng.uniform(-M_PI, M_PI);

    DensityMatrix rho(n);
    rho.run(c, params, {0.2, -0.4, 0.9});
    rho.apply_depolarizing_1q(0.05, 0);
    rho.apply_depolarizing_2q(0.02, 1, 2);
    rho.apply_thermal_relaxation(0.03, 0.01, 1);
    rho.apply_superop_1q(random_matrix<Mat4>(rng), 2);
    rho.apply_superop_2q(random_matrix<Mat16>(rng), 0, 2);
    return rho;
}

TEST(KernelDispatch, DensityMatrixTiersBitIdentical)
{
    TierGuard guard;
    const int best = static_cast<int>(best_supported_tier());
    const DensityMatrix scalar =
        run_channel_gauntlet(KernelTier::Baseline, 5u);
    const std::size_t dim = std::size_t{1} << scalar.num_qubits();
    for (int t = 1; t <= best; ++t) {
        const DensityMatrix vec =
            run_channel_gauntlet(static_cast<KernelTier>(t), 5u);
        for (std::size_t r = 0; r < dim; ++r)
            for (std::size_t col = 0; col < dim; ++col) {
                const std::complex<double> a = scalar.element(r, col);
                const std::complex<double> b = vec.element(r, col);
                ASSERT_EQ(std::memcmp(&a, &b, sizeof a), 0)
                    << "tier " << t << " rho(" << r << ", " << col << ")";
            }
    }
}

TEST(KernelDispatch, FloatStateTracksDoubleWithinFloatEps)
{
    Rng rng(101);
    const int n = 6;
    Circuit c = build_random_rxyz_cz(n, n, 4 * n, 2, rng);
    std::vector<double> params(static_cast<std::size_t>(4 * n));
    for (auto &p : params)
        p = rng.uniform(-M_PI, M_PI);
    const std::vector<double> x = {0.3, -0.2, 0.7, -0.9, 0.1, 0.5};

    StateVector psi(n);
    psi.run(c, params, x);
    StateVectorF psif(n);
    psif.run(c, params, x);

    EXPECT_NEAR(psif.norm(), 1.0, 1e-5);
    const auto pd = psi.probabilities(c.measured());
    const auto pf = psif.probabilities(c.measured());
    ASSERT_EQ(pd.size(), pf.size());
    for (std::size_t i = 0; i < pd.size(); ++i)
        EXPECT_NEAR(pd[i], pf[i], 1e-5);
}

} // namespace
