/**
 * @file
 * QML-stack tests: dataset utilities, PCA correctness, the
 * classification head, the Adam optimizer, and end-to-end training
 * (circuits must actually learn the synthetic tasks; both gradient
 * backends must agree on the physics and differ only in cost).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "circuit/builders.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "qml/classifier.hpp"
#include "qml/dataset.hpp"
#include "qml/diagnostics.hpp"
#include "qml/optimizer.hpp"
#include "qml/pca.hpp"
#include "qml/synthetic.hpp"
#include "qml/trainer.hpp"

namespace {

using namespace elv;
using namespace elv::circ;
using namespace elv::qml;

TEST(Dataset, NormalizationBounds)
{
    Rng rng(1);
    Dataset data = make_bank(200, rng);
    normalize_features(data, -1.0, 1.0);
    for (const auto &row : data.samples)
        for (double v : row) {
            EXPECT_GE(v, -1.0 - 1e-12);
            EXPECT_LE(v, 1.0 + 1e-12);
        }
}

TEST(Dataset, NormalizeLikeUsesReferenceRanges)
{
    Dataset ref;
    ref.num_classes = 2;
    ref.samples = {{0.0}, {10.0}};
    ref.labels = {0, 1};
    Dataset other;
    other.num_classes = 2;
    other.samples = {{5.0}, {20.0}};
    other.labels = {0, 1};
    normalize_features_like(other, ref, 0.0, 1.0);
    EXPECT_NEAR(other.samples[0][0], 0.5, 1e-12);
    // Out-of-range values are clamped to the target interval.
    EXPECT_NEAR(other.samples[1][0], 1.0, 1e-12);
}

TEST(Dataset, SamplePerClassBalanced)
{
    Rng rng(2);
    Dataset data = make_moons(100, 0.1, rng);
    const auto idx = sample_per_class(data, 10, rng);
    ASSERT_EQ(idx.size(), 20u);
    int per_class[2] = {0, 0};
    std::set<std::size_t> unique(idx.begin(), idx.end());
    EXPECT_EQ(unique.size(), 20u);
    for (std::size_t i : idx)
        ++per_class[data.labels[i]];
    EXPECT_EQ(per_class[0], 10);
    EXPECT_EQ(per_class[1], 10);
}

TEST(Dataset, ShuffleKeepsPairs)
{
    Rng rng(3);
    Dataset data;
    data.num_classes = 2;
    for (int i = 0; i < 50; ++i) {
        data.samples.push_back({static_cast<double>(i)});
        data.labels.push_back(i % 2);
    }
    shuffle_dataset(data, rng);
    for (std::size_t i = 0; i < data.samples.size(); ++i)
        EXPECT_EQ(static_cast<int>(data.samples[i][0]) % 2,
                  data.labels[i]);
}

TEST(Pca, RecoversDominantDirection)
{
    // Data stretched along (1, 1)/sqrt(2): the first component must align
    // with it, and the explained variance must dominate.
    Rng rng(4);
    std::vector<std::vector<double>> data;
    for (int i = 0; i < 500; ++i) {
        const double main_axis = rng.normal(0.0, 3.0);
        const double off_axis = rng.normal(0.0, 0.2);
        data.push_back({main_axis + off_axis, main_axis - off_axis});
    }
    const Pca pca(data, 2);
    const auto &var = pca.explained_variance();
    EXPECT_GT(var[0], 10.0 * var[1]);

    const auto projected = pca.transform(std::vector<double>{1.0, 1.0});
    EXPECT_GT(std::abs(projected[0]), std::abs(projected[1]));
}

TEST(Pca, TransformPreservesPairwiseDistances)
{
    // With all components kept, PCA is an isometry (orthogonal map).
    Rng rng(5);
    std::vector<std::vector<double>> data;
    for (int i = 0; i < 100; ++i)
        data.push_back({rng.normal(), rng.normal(), rng.normal()});
    const Pca pca(data, 3);
    const auto t = pca.transform(data);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t a = rng.uniform_index(100);
        const std::size_t b = rng.uniform_index(100);
        double d_orig = 0.0, d_proj = 0.0;
        for (int f = 0; f < 3; ++f) {
            d_orig += (data[a][f] - data[b][f]) *
                      (data[a][f] - data[b][f]);
            d_proj += (t[a][f] - t[b][f]) * (t[a][f] - t[b][f]);
        }
        EXPECT_NEAR(d_orig, d_proj, 1e-9);
    }
}

TEST(Synthetic, BenchmarkTableMatchesPaper)
{
    const auto table = benchmark_table();
    ASSERT_EQ(table.size(), 9u);
    const BenchmarkSpec moons = benchmark_spec("moons");
    EXPECT_EQ(moons.classes, 2);
    EXPECT_EQ(moons.dim, 2);
    EXPECT_EQ(moons.train, 600);
    EXPECT_EQ(moons.params, 16);
    const BenchmarkSpec m10 = benchmark_spec("mnist-10");
    EXPECT_EQ(m10.classes, 10);
    EXPECT_EQ(m10.dim, 36);
    EXPECT_EQ(m10.train, 60000);
    EXPECT_EQ(m10.params, 72);
    EXPECT_THROW(benchmark_spec("cifar"), elv::UsageError);
}

TEST(Synthetic, GeneratedBenchmarksAreWellFormed)
{
    for (const auto &spec : benchmark_table()) {
        const Benchmark bench = make_benchmark(spec.name, 7, 0.05);
        bench.train.check();
        bench.test.check();
        EXPECT_EQ(bench.train.dim(), spec.dim) << spec.name;
        EXPECT_EQ(bench.train.num_classes, spec.classes) << spec.name;
        // Every class must be represented in the (scaled) train set.
        std::set<int> seen(bench.train.labels.begin(),
                           bench.train.labels.end());
        EXPECT_EQ(static_cast<int>(seen.size()), spec.classes)
            << spec.name;
        for (const auto &row : bench.train.samples)
            for (double v : row)
                EXPECT_LE(std::abs(v), M_PI / 2 + 1e-9);
    }
}

TEST(Synthetic, GenerationIsDeterministic)
{
    const Benchmark a = make_benchmark("bank", 99, 0.1);
    const Benchmark b = make_benchmark("bank", 99, 0.1);
    EXPECT_EQ(a.train.samples, b.train.samples);
    EXPECT_EQ(a.test.labels, b.test.labels);
}

TEST(Classifier, ProbabilitiesFormDistribution)
{
    Rng rng(6);
    const Circuit c = build_random_rxyz_cz(4, 4, 12, 2, rng);
    std::vector<double> params(12);
    for (auto &p : params)
        p = rng.uniform(-M_PI, M_PI);
    const auto probs =
        class_probabilities(c, params, {0.1, 0.2, 0.3, 0.4}, 3);
    ASSERT_EQ(probs.size(), 3u);
    double total = 0.0;
    for (double p : probs) {
        EXPECT_GE(p, 0.0);
        total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Classifier, PredictAndLoss)
{
    EXPECT_EQ(predict_class({0.2, 0.7, 0.1}), 1);
    EXPECT_NEAR(cross_entropy({0.5, 0.5}, 0), std::log(2.0), 1e-12);
    EXPECT_GT(cross_entropy({1e-20, 1.0}, 0), 20.0);
}

TEST(Optimizer, AdamMinimizesQuadratic)
{
    Adam adam(2, 0.1);
    std::vector<double> params = {3.0, -2.0};
    for (int step = 0; step < 500; ++step) {
        const std::vector<double> grads = {2.0 * (params[0] - 1.0),
                                           2.0 * (params[1] + 0.5)};
        adam.step(params, grads);
    }
    EXPECT_NEAR(params[0], 1.0, 1e-3);
    EXPECT_NEAR(params[1], -0.5, 1e-3);
}

TEST(Trainer, LearnsMoons)
{
    const Benchmark bench = make_benchmark("moons", 5, 0.2);
    Rng rng(8);
    const Circuit c =
        build_random_rxyz_cz(bench.spec.qubits, bench.spec.dim,
                             bench.spec.params, bench.spec.meas, rng);
    TrainConfig config;
    config.epochs = 40;
    config.seed = 11;
    const TrainResult trained = train_circuit(c, bench.train, config);

    // Loss must fall substantially and test accuracy beat chance.
    EXPECT_LT(trained.loss_history.back(),
              0.8 * trained.loss_history.front());
    const EvalResult eval = evaluate(c, trained.params, bench.test);
    EXPECT_GT(eval.accuracy, 0.75);
}

TEST(Trainer, ParameterShiftMatchesAdjointTrajectory)
{
    // Identical seeds and data: the two backends compute the same
    // gradients, so the loss histories must coincide.
    const Benchmark bench = make_benchmark("moons", 6, 0.05);
    Rng rng(9);
    const Circuit c = build_random_rxyz_cz(3, 2, 6, 1, rng);

    TrainConfig adj;
    adj.epochs = 3;
    adj.seed = 21;
    adj.backend = GradientBackend::Adjoint;
    TrainConfig shift = adj;
    shift.backend = GradientBackend::ParameterShift;

    const TrainResult a = train_circuit(c, bench.train, adj);
    const TrainResult b = train_circuit(c, bench.train, shift);
    ASSERT_EQ(a.loss_history.size(), b.loss_history.size());
    for (std::size_t e = 0; e < a.loss_history.size(); ++e)
        EXPECT_NEAR(a.loss_history[e], b.loss_history[e], 1e-8);

    // ... but the hardware backend needs 1 + 2P times more executions.
    EXPECT_EQ(b.circuit_executions,
              a.circuit_executions * (1 + 2 * 6));
}

TEST(Trainer, ExecutionCountFormula)
{
    EXPECT_EQ(parameter_shift_execution_count(10, 2, 3, 8),
              static_cast<std::uint64_t>(21 * 2 * 3 * 8));
}

TEST(Trainer, HandlesAmplitudeEmbeddingCircuits)
{
    const Benchmark bench = make_benchmark("mnist-2", 3, 0.03);
    const Circuit c = build_human_designed(
        4, bench.spec.dim, 12, bench.spec.meas,
        EmbeddingScheme::Amplitude);
    TrainConfig config;
    config.epochs = 3;
    config.seed = 4;
    const TrainResult trained = train_circuit(c, bench.train, config);
    EXPECT_EQ(trained.params.size(), 12u);
    const EvalResult eval = evaluate(c, trained.params, bench.test);
    EXPECT_GE(eval.accuracy, 0.0); // smoke: runs end to end
}

TEST(Diagnostics, BarrenPlateauVarianceDecaysWithWidth)
{
    // McClean et al.: for deep random circuits, the gradient variance
    // of a local cost decays exponentially with qubit count. Check the
    // monotone-decay shape between 2 and 6 qubits.
    double prev = 1e9;
    for (int qubits : {2, 4, 6}) {
        // Structured brickwork ansatz so the tracked parameter (slot 0,
        // an RY on the measured qubit) is always causally connected.
        Circuit c(qubits);
        for (int layer = 0; layer < 8; ++layer) {
            for (int q = 0; q < qubits; ++q) {
                c.add_variational(GateKind::RY, {q});
                c.add_variational(GateKind::RZ, {q});
            }
            for (int q = 0; q + 1 < qubits; ++q)
                c.add_gate(GateKind::CX, {q, q + 1});
            if (qubits > 1)
                c.add_gate(GateKind::CX, {qubits - 1, 0});
        }
        c.set_measured({0});
        Rng rng(41);
        GradientVarianceOptions options;
        options.num_samples = 48;
        const GradientVariance gv = gradient_variance(c, rng, options);
        EXPECT_GT(gv.variance, 0.0);
        EXPECT_LT(gv.variance, prev) << qubits << " qubits";
        EXPECT_NEAR(gv.mean, 0.0, 0.15);
        prev = gv.variance;
    }
}

TEST(Diagnostics, CountsExecutionsAndValidatesInput)
{
    Rng rng(42);
    Circuit c = build_random_rxyz_cz(3, 2, 6, 1, rng);
    GradientVarianceOptions options;
    options.num_samples = 8;
    Rng gv_rng(1);
    const GradientVariance gv = gradient_variance(c, gv_rng, options);
    EXPECT_EQ(gv.circuit_executions, 8u);

    Circuit no_params(2);
    no_params.add_gate(GateKind::H, {0});
    no_params.set_measured({0});
    Rng r2(2);
    EXPECT_THROW(gradient_variance(no_params, r2), elv::InternalError);
}

TEST(Trainer, NoiseAwareTrainingThroughProvider)
{
    // Training through a distribution provider (here: the noiseless
    // statevector, wrapped) must match plain parameter-shift training
    // exactly — and a noisy provider must still learn the task.
    const Benchmark bench = make_benchmark("moons", 8, 0.08);
    Rng rng(10);
    const Circuit c = build_random_rxyz_cz(3, 2, 8, 1, rng);

    TrainConfig plain;
    plain.epochs = 4;
    plain.seed = 31;
    plain.backend = GradientBackend::ParameterShift;
    const TrainResult a = train_circuit(c, bench.train, plain);

    TrainConfig provided = plain;
    provided.distribution = statevector_distribution();
    const TrainResult b = train_circuit(c, bench.train, provided);
    ASSERT_EQ(a.loss_history.size(), b.loss_history.size());
    for (std::size_t e = 0; e < a.loss_history.size(); ++e)
        EXPECT_NEAR(a.loss_history[e], b.loss_history[e], 1e-9);
}

TEST(Trainer, ProviderRequiresParameterShift)
{
    const Benchmark bench = make_benchmark("moons", 9, 0.05);
    Rng rng(11);
    const Circuit c = build_random_rxyz_cz(2, 2, 4, 1, rng);
    TrainConfig config;
    config.epochs = 1;
    config.backend = GradientBackend::Adjoint;
    config.distribution = statevector_distribution();
    EXPECT_THROW(train_circuit(c, bench.train, config),
                 elv::InternalError);
}

} // namespace
