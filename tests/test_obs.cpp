/**
 * @file
 * Observability-layer tests: metrics registry semantics (exact sums
 * under concurrent increments, histogram bucket edges, gauge high-water
 * marks), tracer span collection and Chrome-trace rendering (events
 * nest by time containment, the JSON is structurally sound), the
 * streaming JSON writer, and the structured run report (its tallies
 * must match the SearchResult it serializes).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/run_report.hpp"
#include "core/search.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "qml/synthetic.hpp"

namespace {

using namespace elv;

/** Balanced-delimiter check: cheap structural JSON sanity. */
bool
balanced_json(const std::string &doc)
{
    int depth = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < doc.size(); ++i) {
        const char c = doc[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"') {
            in_string = true;
        } else if (c == '{' || c == '[') {
            ++depth;
        } else if (c == '}' || c == ']') {
            if (--depth < 0)
                return false;
        }
    }
    return depth == 0 && !in_string;
}

TEST(Metrics, ConcurrentCounterIncrementsSumExactly)
{
    obs::Registry registry;
    obs::Counter &counter = registry.counter("test.hits");
    constexpr int kThreads = 8;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&counter] {
            for (int i = 0; i < kPerThread; ++i)
                counter.add();
        });
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(counter.value(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, CounterAddNAndReset)
{
    obs::Registry registry;
    obs::Counter &counter = registry.counter("test.bulk");
    counter.add(41);
    counter.add();
    EXPECT_EQ(counter.value(), 42u);
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(Metrics, RegistryReturnsStableReferences)
{
    obs::Registry registry;
    obs::Counter &a = registry.counter("same.name");
    obs::Counter &b = registry.counter("same.name");
    EXPECT_EQ(&a, &b);
    a.add(3);
    EXPECT_EQ(b.value(), 3u);
}

TEST(Metrics, GaugeTracksValueAndMax)
{
    obs::Registry registry;
    obs::Gauge &gauge = registry.gauge("test.depth");
    gauge.add(5);
    gauge.add(3);
    gauge.add(-6);
    EXPECT_EQ(gauge.value(), 2);
    EXPECT_EQ(gauge.max_value(), 8);
    gauge.set(1);
    EXPECT_EQ(gauge.value(), 1);
    EXPECT_EQ(gauge.max_value(), 8);
}

TEST(Metrics, HistogramBucketEdgesArePrometheusStyle)
{
    obs::Registry registry;
    obs::Histogram &hist =
        registry.histogram("test.hist", {1.0, 2.0, 5.0});
    // Bucket i counts edges[i-1] < v <= edges[i]; last = overflow.
    hist.observe(0.5);  // bucket 0
    hist.observe(1.0);  // bucket 0 (inclusive upper bound)
    hist.observe(1.5);  // bucket 1
    hist.observe(2.0);  // bucket 1
    hist.observe(5.0);  // bucket 2
    hist.observe(6.0);  // overflow
    const auto counts = hist.counts();
    ASSERT_EQ(counts.size(), 4u);
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 2u);
    EXPECT_EQ(counts[2], 1u);
    EXPECT_EQ(counts[3], 1u);
    EXPECT_EQ(hist.total(), 6u);
}

TEST(Metrics, SnapshotIsSortedAndLooksUpByName)
{
    obs::Registry registry;
    registry.counter("zz.last").add(2);
    registry.counter("aa.first").add(1);
    registry.gauge("mid.gauge").set(7);
    const obs::MetricsSnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters[0].name, "aa.first");
    EXPECT_EQ(snap.counters[1].name, "zz.last");
    EXPECT_EQ(snap.counter("zz.last"), 2u);
    EXPECT_EQ(snap.counter("absent"), 0u);
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_EQ(snap.gauges[0].value, 7);
}

#ifndef ELV_OBS_DISABLED
TEST(Metrics, MacroSitesRespectTheEnabledFlag)
{
    obs::Registry &registry = obs::Registry::global();
    registry.reset();
    registry.set_enabled(false);
    ELV_METRIC_COUNT("test.macro.flag");
    EXPECT_EQ(registry.counter("test.macro.flag").value(), 0u);
    registry.set_enabled(true);
    ELV_METRIC_COUNT("test.macro.flag");
    ELV_METRIC_COUNT_N("test.macro.flag", 2);
    registry.set_enabled(false);
    EXPECT_EQ(registry.counter("test.macro.flag").value(), 3u);
    registry.reset();
}
#endif // ELV_OBS_DISABLED

TEST(Tracer, SpansNestByTimeContainment)
{
    obs::Tracer &tracer = obs::Tracer::global();
    tracer.drain(); // discard anything earlier tests left behind
    tracer.start();
    {
        obs::TraceScope outer("outer", "test");
        {
            obs::TraceScope inner("inner", "test",
                                  std::int64_t{17});
        }
    }
    tracer.stop();
    const auto events = tracer.drain();
    ASSERT_EQ(events.size(), 2u);
    // drain() sorts by start time: outer opened first.
    EXPECT_EQ(events[0].name, "outer");
    EXPECT_EQ(events[1].name, "inner");
    EXPECT_TRUE(events[1].has_arg);
    EXPECT_EQ(events[1].arg, 17);
    EXPECT_FALSE(events[0].has_arg);
    // Same thread, and the inner interval sits inside the outer one —
    // exactly what makes Perfetto render it as a nested span.
    EXPECT_EQ(events[0].tid, events[1].tid);
    EXPECT_LE(events[0].ts_us, events[1].ts_us);
    EXPECT_LE(events[1].ts_us + events[1].dur_us,
              events[0].ts_us + events[0].dur_us + 1e-3);
}

TEST(Tracer, DisabledTracerRecordsNothing)
{
    obs::Tracer &tracer = obs::Tracer::global();
    tracer.drain();
    ASSERT_FALSE(tracer.enabled());
    {
        obs::TraceScope span("ignored", "test");
        ELV_TRACE_SCOPE("ignored.macro", "test");
    }
    EXPECT_TRUE(tracer.drain().empty());
}

TEST(Tracer, CollectsSpansFromManyThreads)
{
    obs::Tracer &tracer = obs::Tracer::global();
    tracer.drain();
    tracer.start();
    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([t] {
            obs::TraceScope span("worker", "test",
                                 static_cast<std::int64_t>(t));
        });
    for (std::thread &thread : threads)
        thread.join();
    tracer.stop();
    const auto events = tracer.drain();
    ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads));
    std::vector<int> tids;
    for (const auto &event : events)
        tids.push_back(event.tid);
    std::sort(tids.begin(), tids.end());
    EXPECT_EQ(std::unique(tids.begin(), tids.end()), tids.end())
        << "each thread must report its own tid";
}

TEST(Tracer, WritesStructurallySoundChromeTrace)
{
    obs::Tracer &tracer = obs::Tracer::global();
    tracer.drain();
    tracer.start();
    {
        obs::TraceScope outer("phase.demo", "search");
        obs::TraceScope inner("candidate", "search.candidate",
                              std::int64_t{3});
    }
    const std::string path = ::testing::TempDir() + "elv_trace.json";
    std::remove(path.c_str());
    ASSERT_TRUE(tracer.write(path));
    EXPECT_FALSE(tracer.enabled()) << "write() must stop the tracer";

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string doc = buffer.str();
    EXPECT_TRUE(balanced_json(doc));
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"phase.demo\""), std::string::npos);
    EXPECT_NE(doc.find("\"candidate\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(doc.find("thread_name"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Tracer, WriteFailsGracefullyOnBadPath)
{
    obs::Tracer &tracer = obs::Tracer::global();
    tracer.start();
    EXPECT_FALSE(tracer.write("/nonexistent-dir/trace.json"));
    tracer.drain();
}

TEST(JsonWriterTest, NestsObjectsAndArraysWithCommas)
{
    obs::JsonWriter json;
    json.begin_object();
    json.kv("name", "elv");
    json.kv("count", 3);
    json.key("list").begin_array();
    json.value(1).value(2).value(3);
    json.end_array();
    json.key("nested").begin_object();
    json.kv("ok", true);
    json.end_object();
    json.end_object();
    EXPECT_EQ(json.str(), "{\"name\": \"elv\", \"count\": 3, "
                          "\"list\": [1, 2, 3], "
                          "\"nested\": {\"ok\": true}}");
}

TEST(JsonWriterTest, EscapesStringsAndNullsNonFinite)
{
    obs::JsonWriter json;
    json.begin_object();
    json.kv("text", "a\"b\\c\n");
    json.kv("nan", std::nan(""));
    json.kv("num", 0.5);
    json.end_object();
    EXPECT_EQ(json.str(), "{\"text\": \"a\\\"b\\\\c\\n\", "
                          "\"nan\": null, \"num\": 0.5}");
}

/** Tiny search for report round-trips (seconds, not minutes). */
core::ElivagarConfig
tiny_search_config(int num_features)
{
    core::ElivagarConfig config;
    config.num_candidates = 6;
    config.candidate.num_qubits = 4;
    config.candidate.num_params = 10;
    config.candidate.num_embeds = 4;
    config.candidate.num_meas = 1;
    config.candidate.num_features = num_features;
    config.cnr.num_replicas = 4;
    config.repcap.samples_per_class = 4;
    config.repcap.param_inits = 2;
    config.seed = 31;
    return config;
}

TEST(RunReport, TalliesMatchTheSearchResultExactly)
{
    const qml::Benchmark bench = qml::make_benchmark("moons", 5, 0.08);
    const dev::Device device = dev::make_device("ibmq_manila");
    const auto config = tiny_search_config(bench.spec.dim);
    const auto result =
        core::elivagar_search(device, bench.train, config);

    const std::string doc = core::run_report_json(config, result);
    EXPECT_TRUE(balanced_json(doc));

    auto expect_field = [&doc](const std::string &key,
                               const std::string &rendered) {
        const std::string needle = "\"" + key + "\": " + rendered;
        EXPECT_NE(doc.find(needle), std::string::npos)
            << "report missing " << needle;
    };
    expect_field("cnr_executions",
                 std::to_string(result.cnr_executions));
    expect_field("repcap_executions",
                 std::to_string(result.repcap_executions));
    expect_field("total_executions",
                 std::to_string(result.total_executions()));
    expect_field("survivors", std::to_string(result.survivors));
    expect_field("degraded_candidates",
                 std::to_string(result.degraded_candidates));
    expect_field("num_candidates",
                 std::to_string(config.num_candidates));
    expect_field("seed", std::to_string(config.seed));

    // One record per candidate, phases in pipeline order.
    std::size_t records = 0;
    for (std::size_t at = doc.find("\"index\":"); at != std::string::npos;
         at = doc.find("\"index\":", at + 1))
        ++records;
    EXPECT_EQ(records, result.candidates.size());
    ASSERT_EQ(result.phase_timings.size(), 4u);
    EXPECT_EQ(result.phase_timings[0].name, "generate");
    EXPECT_EQ(result.phase_timings[1].name, "cnr");
    EXPECT_EQ(result.phase_timings[2].name, "repcap");
    EXPECT_EQ(result.phase_timings[3].name, "rank");
    EXPECT_GT(result.total_seconds, 0.0);
    EXPECT_GE(result.total_seconds,
              result.phase_seconds("cnr"));
}

TEST(RunReport, SkippedCnrDropsThePhase)
{
    const qml::Benchmark bench = qml::make_benchmark("moons", 5, 0.08);
    const dev::Device device = dev::make_device("ibmq_manila");
    auto config = tiny_search_config(bench.spec.dim);
    config.use_cnr = false;
    const auto result =
        core::elivagar_search(device, bench.train, config);
    EXPECT_EQ(result.phase_seconds("cnr"), 0.0);
    ASSERT_EQ(result.phase_timings.size(), 3u);
    EXPECT_TRUE(balanced_json(core::run_report_json(config, result)));
}

TEST(RunReport, WritesAFileAndFailsGracefully)
{
    const qml::Benchmark bench = qml::make_benchmark("moons", 5, 0.08);
    const dev::Device device = dev::make_device("ibmq_manila");
    const auto config = tiny_search_config(bench.spec.dim);
    const auto result =
        core::elivagar_search(device, bench.train, config);

    const std::string path = ::testing::TempDir() + "elv_report.json";
    std::remove(path.c_str());
    EXPECT_TRUE(core::write_run_report(path, config, result));
    std::ifstream in(path);
    EXPECT_TRUE(in.good());
    std::remove(path.c_str());
    EXPECT_FALSE(core::write_run_report("/nonexistent-dir/report.json",
                                        config, result));
}

} // namespace
