/**
 * @file
 * Property sweeps over the whole Table 3 device catalog (parameterized
 * gtest): candidate generation must be hardware-native on every device,
 * SABRE must route a fixed stress circuit everywhere, CNR must stay in
 * bounds everywhere, and the stabilizer CNR backend must run at every
 * device size including the 127-qubit Eagles.
 */
#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "compiler/compile.hpp"
#include "core/candidate_gen.hpp"
#include "core/cnr.hpp"
#include "device/device.hpp"
#include "qml/classifier.hpp"

namespace {

using namespace elv;

class DeviceSweep : public ::testing::TestWithParam<std::string>
{
  protected:
    dev::Device device_ = dev::make_device(GetParam());
};

TEST_P(DeviceSweep, CandidatesAreAlwaysHardwareNative)
{
    elv::Rng rng(1);
    core::CandidateConfig config;
    config.num_qubits = std::min(4, device_.num_qubits());
    config.num_params = 10;
    config.num_embeds = 3;
    config.num_meas = std::min(2, config.num_qubits);
    config.num_features = 3;
    for (int trial = 0; trial < 5; ++trial) {
        const circ::Circuit c =
            core::generate_candidate(device_, config, rng);
        EXPECT_TRUE(comp::is_hardware_native(c, device_.topology))
            << device_.name;
        EXPECT_EQ(c.num_params(), config.num_params);
    }
}

TEST_P(DeviceSweep, SabreRoutesStressCircuit)
{
    if (device_.num_qubits() < 5)
        GTEST_SKIP() << "stress circuit needs 5 qubits";
    elv::Rng rng(2);
    // All-to-all CX ladder over 5 logical qubits.
    circ::Circuit logical(5);
    for (int a = 0; a < 5; ++a)
        for (int b = a + 1; b < 5; ++b)
            logical.add_gate(circ::GateKind::CX, {a, b});
    logical.set_measured({0, 4});

    const auto compiled =
        comp::compile_for_device(logical, device_, 3, rng);
    EXPECT_TRUE(
        comp::is_hardware_native(compiled.circuit, device_.topology))
        << device_.name;
    // Routed version must stay simulable after compaction (placement
    // stays local even on the 127-qubit Eagles).
    const auto probs = qml::statevector_distribution()(
        compiled.circuit, {}, {});
    double total = 0.0;
    for (double p : probs)
        total += p;
    EXPECT_NEAR(total, 1.0, 1e-9) << device_.name;
}

TEST_P(DeviceSweep, StabilizerCnrInBoundsEverywhere)
{
    elv::Rng rng(3);
    core::CandidateConfig config;
    config.num_qubits = std::min(5, device_.num_qubits());
    config.num_params = 12;
    config.num_embeds = 3;
    config.num_meas = std::min(3, config.num_qubits);
    config.num_features = 3;
    const circ::Circuit c =
        core::generate_candidate(device_, config, rng);

    core::CnrOptions options;
    options.backend = core::CnrBackend::Stabilizer;
    options.num_replicas = 4;
    options.shots = 256;
    const auto result =
        core::clifford_noise_resilience(c, device_, rng, options);
    EXPECT_GE(result.cnr, 0.0) << device_.name;
    EXPECT_LE(result.cnr, 1.0) << device_.name;
    EXPECT_EQ(result.circuit_executions, 4u);
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, DeviceSweep,
    ::testing::Values("oqc_lucy", "rigetti_aspen_m2", "rigetti_aspen_m3",
                      "ibmq_jakarta", "ibm_nairobi", "ibm_lagos",
                      "ibm_perth", "ibm_geneva", "ibm_guadalupe",
                      "ibmq_kolkata", "ibmq_mumbai", "ibm_kyoto",
                      "ibm_osaka", "ibmq_manila"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
