/**
 * @file
 * Stabilizer simulator tests: agreement with the state-vector simulator
 * on random Clifford circuits (the core correctness property), canonical
 * states, measurement collapse, Pauli injection, and scalability to
 * qubit counts far beyond dense simulation.
 */
#include <gtest/gtest.h>

#include "circuit/circuit.hpp"
#include "circuit/clifford_replica.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "sim/statevector.hpp"
#include "stabilizer/tableau.hpp"

namespace {

using namespace elv;
using namespace elv::circ;
using namespace elv::stab;

/** Build a random Clifford circuit on n qubits with `gates` gates. */
Circuit
random_clifford_circuit(int n, int gates, Rng &rng)
{
    Circuit c(n);
    for (int g = 0; g < gates; ++g) {
        const int pick = static_cast<int>(rng.uniform_index(n >= 2 ? 7 : 5));
        const int q = static_cast<int>(
            rng.uniform_index(static_cast<std::size_t>(n)));
        switch (pick) {
          case 0: c.add_gate(GateKind::H, {q}); break;
          case 1: c.add_gate(GateKind::S, {q}); break;
          case 2: c.add_gate(GateKind::Sdg, {q}); break;
          case 3: c.add_gate(GateKind::X, {q}); break;
          case 4: c.add_gate(GateKind::Z, {q}); break;
          default: {
            int b = static_cast<int>(
                rng.uniform_index(static_cast<std::size_t>(n - 1)));
            if (b >= q)
                ++b;
            c.add_gate(pick == 5 ? GateKind::CX : GateKind::CZ, {q, b});
            break;
          }
        }
    }
    std::vector<int> meas;
    for (int q = 0; q < n; ++q)
        meas.push_back(q);
    c.set_measured(meas);
    return c;
}

TEST(Tableau, InitialStateMeasuresZero)
{
    Rng rng(1);
    Tableau tab(4);
    for (int q = 0; q < 4; ++q) {
        EXPECT_TRUE(tab.is_deterministic(q));
        EXPECT_EQ(tab.measure(q, rng), 0);
    }
}

TEST(Tableau, HadamardGivesRandomOutcome)
{
    Rng rng(2);
    int ones = 0;
    for (int trial = 0; trial < 2000; ++trial) {
        Tableau tab(1);
        tab.h(0);
        EXPECT_FALSE(tab.is_deterministic(0));
        ones += tab.measure(0, rng);
    }
    EXPECT_NEAR(ones / 2000.0, 0.5, 0.05);
}

TEST(Tableau, MeasurementCollapses)
{
    Rng rng(3);
    Tableau tab(1);
    tab.h(0);
    const int first = tab.measure(0, rng);
    // Repeated measurement must repeat the outcome.
    for (int i = 0; i < 5; ++i) {
        EXPECT_TRUE(tab.is_deterministic(0));
        EXPECT_EQ(tab.measure(0, rng), first);
    }
}

TEST(Tableau, BellStateCorrelations)
{
    Rng rng(4);
    for (int trial = 0; trial < 200; ++trial) {
        Tableau tab(2);
        tab.h(0);
        tab.cx(0, 1);
        const int a = tab.measure(0, rng);
        const int b = tab.measure(1, rng);
        EXPECT_EQ(a, b);
    }
}

TEST(Tableau, XFlipsOutcome)
{
    Rng rng(5);
    Tableau tab(2);
    tab.x(1);
    EXPECT_EQ(tab.measure(0, rng), 0);
    EXPECT_EQ(tab.measure(1, rng), 1);
}

TEST(Tableau, PauliInjectionOnPlusState)
{
    // Z on |+> flips X-basis outcome; in Z basis the distribution stays
    // uniform, but H Z H |0> = |1> deterministically.
    Rng rng(6);
    Tableau tab(1);
    tab.h(0);
    tab.pauli(0, false, true); // Z error
    tab.h(0);
    EXPECT_TRUE(tab.is_deterministic(0));
    EXPECT_EQ(tab.measure(0, rng), 1);
}

TEST(Tableau, SwapGate)
{
    Rng rng(7);
    Tableau tab(2);
    tab.x(0);
    tab.swap_gate(0, 1);
    EXPECT_EQ(tab.measure(0, rng), 0);
    EXPECT_EQ(tab.measure(1, rng), 1);
}

TEST(Tableau, SdgIsInverseOfS)
{
    Rng rng(8);
    Tableau tab(1);
    tab.h(0);
    tab.s(0);
    tab.sdg(0);
    tab.h(0);
    EXPECT_EQ(tab.measure(0, rng), 0);
}

class TableauVsStateVector : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TableauVsStateVector, DistributionsAgree)
{
    Rng rng(GetParam());
    const int n = 4;
    const Circuit c = random_clifford_circuit(n, 40, rng);

    sim::StateVector psi(n);
    psi.run(c);
    const auto exact = psi.probabilities(c.measured());

    Rng shot_rng(GetParam() + 1000);
    const auto sampled = sample_distribution(c, 20000, shot_rng);

    ASSERT_EQ(exact.size(), sampled.size());
    EXPECT_LT(total_variation_distance(exact, sampled), 0.03);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TableauVsStateVector,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77,
                                           88));

TEST(Tableau, CliffordReplicaAgreesWithDenseSimulation)
{
    // End-to-end: replicas of a parametric circuit run identically on
    // the tableau and the state-vector backends.
    Rng rng(123);
    Circuit c(3);
    c.add_variational(GateKind::RX, {0});
    c.add_gate(GateKind::CX, {0, 1});
    c.add_variational(GateKind::U3, {2});
    c.add_gate(GateKind::CZ, {1, 2});
    c.add_variational(GateKind::RY, {1});
    c.set_measured({0, 1, 2});

    for (int i = 0; i < 4; ++i) {
        const Circuit replica = make_clifford_replica(c, rng);
        sim::StateVector psi(3);
        psi.run(replica);
        const auto exact = psi.probabilities(replica.measured());
        Rng shot_rng(500 + i);
        const auto sampled = sample_distribution(replica, 20000, shot_rng);
        EXPECT_LT(total_variation_distance(exact, sampled), 0.03);
    }
}

TEST(Tableau, ScalesToLargeRegisters)
{
    // 80 qubits: far beyond dense simulation; GHZ chain must still give
    // perfectly correlated outcomes.
    Rng rng(9);
    const int n = 80;
    Tableau tab(n);
    tab.h(0);
    for (int q = 0; q + 1 < n; ++q)
        tab.cx(q, q + 1);
    const int first = tab.measure(0, rng);
    for (int q = 1; q < n; ++q)
        EXPECT_EQ(tab.measure(q, rng), first);
}

TEST(Tableau, RejectsNonCliffordOps)
{
    Circuit c(1);
    c.add_variational(GateKind::RX, {0});
    c.set_measured({0});
    Tableau tab(1);
    EXPECT_THROW(tab.apply(c), elv::InternalError);
}

TEST(RunShot, ReadoutFlipHookApplies)
{
    // A hook that always flips readout turns |0> shots into |1>.
    class AlwaysFlip : public PauliNoiseHook
    {
      public:
        void after_op(Tableau &, const circ::Op &,
                      Rng &) const override {}
        double readout_flip_probability(int) const override { return 1.0; }
    };
    // readout flip prob of 1.0 with bernoulli(1.0) is always true.
    Circuit c(1);
    c.add_gate(GateKind::Z, {0}); // no-op on |0>
    c.set_measured({0});
    Rng rng(10);
    AlwaysFlip hook;
    EXPECT_EQ(run_shot(c, rng, &hook), 1u);
}

} // namespace
