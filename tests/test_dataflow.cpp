/**
 * @file
 * Tests for the lint dataflow engine (lightcone, parameter liveness,
 * const/Clifford regions), the search-time semantic pruning pass it
 * powers, the `--fix` elision, and the SARIF/baseline surface.
 *
 * The load-bearing suite is the ranking gauntlet: CNR and RepCap
 * evaluated with and without `prune_dead_structure` over a corpus of
 * dead-structure circuits must produce the *same candidate ranking*
 * and scores equal within 1e-9 — the pruning pass is a pure
 * performance optimization, never a semantic change.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "circuit/builders.hpp"
#include "circuit/circuit.hpp"
#include "circuit/clifford_replica.hpp"
#include "circuit/serialize.hpp"
#include "common/rng.hpp"
#include "core/cnr.hpp"
#include "core/repcap.hpp"
#include "core/search.hpp"
#include "device/device.hpp"
#include "lint/dataflow.hpp"
#include "lint/lint.hpp"
#include "lint/sarif.hpp"
#include "obs/metrics.hpp"
#include "qml/dataset.hpp"
#include "qml/trainer.hpp"
#include "sim/fusion.hpp"
#include "sim/statevector.hpp"

namespace {

using namespace elv;
using circ::Circuit;
using circ::GateKind;
using circ::Op;
using circ::ParamRole;
using lint::AbstractState;
using lint::CircuitView;

/**
 * 3 qubits, measured {0, 1}. Ops 0-3 are the live cone; op 4 (var RZ
 * on q2, slot 2) and op 5 (H on q2) are outside it.
 */
Circuit
dead_tail_circuit()
{
    Circuit c(3);
    c.add_embedding(GateKind::RY, {0}, 0);
    c.add_variational(GateKind::RX, {0});
    c.add_gate(GateKind::CX, {0, 1});
    c.add_variational(GateKind::RY, {1});
    c.add_variational(GateKind::RZ, {2}); // dead: q2 never meets the cone
    c.add_gate(GateKind::H, {2});         // dead
    c.set_measured({0, 1});
    return c;
}

/** Measured distribution of `circuit` under `params` (feature 0.4). */
std::vector<double>
measured_distribution(const Circuit &circuit,
                      const std::vector<double> &params)
{
    sim::StateVector psi(circuit.num_qubits());
    psi.run(circuit, params, {0.4});
    return psi.probabilities(circuit.measured());
}

// ---------------------------------------------------------------------
// Framework: the abstract domain and the fixed-point driver, used
// directly (the analyses below are clients, not the framework itself).
// ---------------------------------------------------------------------

TEST(DataflowFramework, JoinIsMonotoneUnion)
{
    std::vector<Op> ops;
    const std::vector<int> measured = {0};
    const CircuitView view{3, 2, ops, measured};
    AbstractState a = AbstractState::bottom(view);
    AbstractState b = AbstractState::bottom(view);
    b.mark_qubit(1);
    b.mark_params(0, 1);
    EXPECT_TRUE(a.join(b));
    EXPECT_TRUE(a.qubit_set(1));
    EXPECT_FALSE(a.qubit_set(2));
    EXPECT_EQ(a.param[0], 1);
    EXPECT_FALSE(a.join(b)); // already absorbed: no change
    EXPECT_FALSE(b.join(AbstractState::bottom(view)));
}

TEST(DataflowFramework, ForwardReachabilityToFixpoint)
{
    // A forward taint analysis written against the raw framework:
    // qubit 0 is tainted; any op touching a tainted qubit is marked
    // and spreads the taint to its operands.
    std::vector<Op> ops(3);
    ops[0].kind = GateKind::CX;
    ops[0].qubits = {0, 1};
    ops[1].kind = GateKind::H;
    ops[1].qubits = {2, -1};
    ops[2].kind = GateKind::CX;
    ops[2].qubits = {1, 2};
    const std::vector<int> measured = {0};
    const CircuitView view{3, 0, ops, measured};

    AbstractState state = AbstractState::bottom(view);
    state.mark_qubit(0);
    std::vector<char> marks;
    const lint::FixpointStats stats = lint::run_to_fixpoint(
        view, lint::Direction::Forward, state,
        [](const Op &op, int, AbstractState &s) {
            bool hit = false;
            for (int k = 0; k < op.num_qubits(); ++k)
                hit |= s.qubit_set(op.qubits[static_cast<std::size_t>(k)]);
            if (hit)
                for (int k = 0; k < op.num_qubits(); ++k)
                    s.mark_qubit(op.qubits[static_cast<std::size_t>(k)]);
            return hit;
        },
        marks);
    EXPECT_FALSE(stats.capped);
    // The framework iterates one global state to a fixpoint, so the
    // result is flow-insensitive: once CX 1,2 spreads the taint to
    // qubit 2 (sweep 1), the re-sweep marks the earlier H as touching
    // tainted data too. Three sweeps: compute, propagate, confirm.
    EXPECT_EQ(marks, (std::vector<char>{1, 1, 1}));
    EXPECT_EQ(stats.sweeps, 3);
    EXPECT_TRUE(state.qubit_set(2)); // via 0 -> 1 -> 2
}

TEST(DataflowFramework, BackwardConeNeedsASecondSweep)
{
    // Backward scan visits `RY 3` before the CX that pulls qubit 3
    // into the cone: single-sweep analyses get this wrong.
    Circuit c(4);
    c.add_gate(GateKind::CX, {2, 3});
    c.add_variational(GateKind::RY, {3});
    c.set_measured({2});
    const lint::LightconeAnalysis analysis =
        lint::analyze_lightcone(lint::view_of(c));
    EXPECT_EQ(analysis.live_ops, (std::vector<char>{1, 1}));
    EXPECT_TRUE(analysis.dead_ops().empty());
    EXPECT_EQ(analysis.live_params, (std::vector<char>{1}));
}

// ---------------------------------------------------------------------
// Lightcone analysis.
// ---------------------------------------------------------------------

TEST(Lightcone, DeadTailIsOutsideTheCone)
{
    const Circuit c = dead_tail_circuit();
    const lint::LightconeAnalysis analysis =
        lint::analyze_lightcone(lint::view_of(c));
    EXPECT_EQ(analysis.dead_ops(), (std::vector<int>{4, 5}));
    EXPECT_EQ(analysis.dead_params(), (std::vector<int>{2}));
    EXPECT_TRUE(analysis.live_qubits[0]);
    EXPECT_TRUE(analysis.live_qubits[1]);
    EXPECT_FALSE(analysis.live_qubits[2]);
    EXPECT_FALSE(analysis.no_measurements);
}

TEST(Lightcone, AmplitudeEmbeddingPullsEveryQubit)
{
    Circuit c(3);
    c.add_amplitude_embedding();
    c.add_variational(GateKind::RX, {2});
    c.set_measured({0});
    const lint::LightconeAnalysis analysis =
        lint::analyze_lightcone(lint::view_of(c));
    // AmpEmbed writes all qubits, so it is live and puts q2 in the
    // cone; but the RX on q2 sits *after* the embed and before nothing
    // that routes q2 into the measurement — it is still live because
    // q2 entered the cone through the embed's operand marking.
    EXPECT_TRUE(analysis.live_ops[0]);
    for (char q : analysis.live_qubits)
        EXPECT_TRUE(q);
}

TEST(Lightcone, NoMeasurementsReportsAndKeepsAllDead)
{
    Circuit c(2);
    c.add_gate(GateKind::H, {0});
    const lint::LightconeAnalysis analysis =
        lint::analyze_lightcone(lint::view_of(c));
    EXPECT_TRUE(analysis.no_measurements);
    EXPECT_EQ(analysis.dead_ops(), (std::vector<int>{0}));
}

// ---------------------------------------------------------------------
// Const/Clifford regions, and the fused-program counterpart.
// ---------------------------------------------------------------------

TEST(CliffordRegions, PrefixSuffixAndParamFreePrefix)
{
    Circuit c(2);
    c.add_gate(GateKind::H, {0});      // clifford prefix
    c.add_gate(GateKind::CX, {0, 1});  // clifford prefix
    c.add_variational(GateKind::RX, {0});
    c.add_gate(GateKind::S, {1});      // clifford suffix
    c.set_measured({0, 1});
    const lint::CliffordRegions regions =
        lint::analyze_clifford_regions(lint::view_of(c));
    EXPECT_EQ(regions.clifford_prefix, 2);
    EXPECT_EQ(regions.clifford_suffix, 1);
    EXPECT_EQ(regions.param_free_prefix, 2);
    EXPECT_FALSE(regions.fully_clifford);
    EXPECT_FALSE(regions.param_free);
}

TEST(CliffordRegions, FullyCliffordCircuit)
{
    Circuit c(2);
    c.add_gate(GateKind::H, {0});
    c.add_gate(GateKind::CX, {0, 1});
    c.set_measured({0, 1});
    const lint::CliffordRegions regions =
        lint::analyze_clifford_regions(lint::view_of(c));
    EXPECT_TRUE(regions.fully_clifford);
    EXPECT_TRUE(regions.param_free);
    EXPECT_EQ(regions.clifford_prefix, 2);
    EXPECT_EQ(regions.clifford_suffix, 0); // prefix claims everything
}

TEST(CliffordRegions, FusedConstPrefixBoundsTheCliffordPrefix)
{
    Circuit c(2);
    c.add_gate(GateKind::H, {0});
    c.add_gate(GateKind::CX, {0, 1});
    c.add_variational(GateKind::RX, {0});
    c.add_gate(GateKind::H, {1});
    c.set_measured({0, 1});
    const sim::FusedProgram fused = sim::FusedProgram::compile(c);
    EXPECT_EQ(fused.const_prefix_source_ops(), 2u);
    const lint::CliffordRegions regions =
        lint::analyze_clifford_regions(lint::view_of(c));
    EXPECT_LE(static_cast<std::size_t>(regions.clifford_prefix),
              fused.const_prefix_source_ops());
}

// ---------------------------------------------------------------------
// prune_to_lightcone: the scoring-path prune (slot-preserving).
// ---------------------------------------------------------------------

TEST(Prune, PreservesRegisterSlotsAndMeasuredDistribution)
{
    const Circuit c = dead_tail_circuit();
    std::size_t elided = 0;
    const Circuit pruned = lint::prune_to_lightcone(c, &elided);
    EXPECT_EQ(elided, 2u);
    EXPECT_EQ(pruned.num_qubits(), c.num_qubits());
    EXPECT_EQ(pruned.num_params(), c.num_params());
    EXPECT_EQ(pruned.measured(), c.measured());
    EXPECT_EQ(pruned.ops().size(), c.ops().size() - 2);

    elv::Rng rng(11);
    std::vector<double> params(static_cast<std::size_t>(c.num_params()));
    for (auto &p : params)
        p = rng.uniform(-M_PI, M_PI);
    const auto original = measured_distribution(c, params);
    const auto reduced = measured_distribution(pruned, params);
    ASSERT_EQ(original.size(), reduced.size());
    for (std::size_t i = 0; i < original.size(); ++i)
        EXPECT_NEAR(original[i], reduced[i], 1e-12);
}

TEST(Prune, CleanCircuitAndDegenerateConeAreUntouched)
{
    Circuit clean(2);
    clean.add_variational(GateKind::RX, {0});
    clean.add_gate(GateKind::CX, {0, 1});
    clean.set_measured({0, 1});
    std::size_t elided = 0;
    EXPECT_EQ(lint::prune_to_lightcone(clean, &elided).ops().size(), 2u);
    EXPECT_EQ(elided, 0u);

    // Degenerate: nothing touches the measured qubit. Pruning would
    // leave zero ops, which downstream compaction rejects — keep as-is.
    Circuit degenerate(2);
    degenerate.add_variational(GateKind::RX, {0});
    degenerate.set_measured({1});
    EXPECT_EQ(lint::prune_to_lightcone(degenerate, &elided).ops().size(),
              1u);
    EXPECT_EQ(elided, 0u);

    // No measurements: lightcone is undefined; unchanged.
    Circuit unmeasured(2);
    unmeasured.add_gate(GateKind::H, {0});
    EXPECT_EQ(lint::prune_to_lightcone(unmeasured).ops().size(), 1u);
}

// ---------------------------------------------------------------------
// elide_dead_structure: the autofix (dense renumbering, serializable).
// ---------------------------------------------------------------------

TEST(Elide, RenumbersDenselyAndRoundTrips)
{
    const Circuit c = dead_tail_circuit();
    const lint::FixResult fix = lint::elide_dead_structure(c);
    EXPECT_EQ(fix.ops_elided, 2u);
    EXPECT_EQ(fix.params_elided, 1u);
    EXPECT_EQ(fix.circuit.num_params(), 2);
    ASSERT_EQ(fix.param_map.size(), 3u);
    EXPECT_EQ(fix.param_map[0], 0);
    EXPECT_EQ(fix.param_map[1], 1);
    EXPECT_EQ(fix.param_map[2], -1);

    // Serializes and parses back (the scoring prune's slot holes
    // cannot do this — dense renumbering is what makes --fix safe).
    const Circuit reparsed = circ::from_text(circ::to_text(fix.circuit));
    EXPECT_EQ(reparsed.num_params(), 2);

    // Re-lints clean for all three dataflow rules.
    const lint::Report report = lint::lint_circuit(reparsed);
    EXPECT_FALSE(report.fired("dead-lightcone")) << report.to_string();
    EXPECT_FALSE(report.fired("dead-parameter")) << report.to_string();
    EXPECT_FALSE(report.has_errors()) << report.to_string();

    // Same measured distribution once parameters are re-mapped.
    elv::Rng rng(13);
    std::vector<double> full(static_cast<std::size_t>(c.num_params()));
    for (auto &p : full)
        p = rng.uniform(-M_PI, M_PI);
    std::vector<double> remapped(
        static_cast<std::size_t>(fix.circuit.num_params()));
    for (std::size_t s = 0; s < full.size(); ++s)
        if (fix.param_map[s] >= 0)
            remapped[static_cast<std::size_t>(fix.param_map[s])] = full[s];
    const auto original = measured_distribution(c, full);
    const auto fixed = measured_distribution(reparsed, remapped);
    ASSERT_EQ(original.size(), fixed.size());
    for (std::size_t i = 0; i < original.size(); ++i)
        EXPECT_NEAR(original[i], fixed[i], 1e-12);
}

TEST(Elide, IdentityOnCleanCircuit)
{
    Circuit clean(2);
    clean.add_variational(GateKind::RX, {0});
    clean.add_gate(GateKind::CX, {0, 1});
    clean.set_measured({0, 1});
    const lint::FixResult fix = lint::elide_dead_structure(clean);
    EXPECT_EQ(fix.ops_elided, 0u);
    EXPECT_EQ(fix.params_elided, 0u);
    EXPECT_EQ(fix.param_map, (std::vector<int>{0}));
    EXPECT_EQ(fix.circuit.ops().size(), 2u);
}

// ---------------------------------------------------------------------
// The three lint rules.
// ---------------------------------------------------------------------

TEST(DataflowRules, DeadLightconeAndDeadParameterFire)
{
    const lint::Report report =
        lint::lint_circuit(dead_tail_circuit());
    EXPECT_TRUE(report.fired("dead-lightcone")) << report.to_string();
    EXPECT_TRUE(report.fired("dead-parameter")) << report.to_string();
    EXPECT_FALSE(report.has_errors()) << report.to_string();
    for (const auto &d : report.diagnostics) {
        if (d.rule == "dead-lightcone") {
            EXPECT_EQ(d.op_index, 4);
        }
    }
}

TEST(DataflowRules, QuietOnFullyLiveCircuit)
{
    const Circuit c = circ::build_human_designed(
        4, 4, 12, 2, circ::EmbeddingScheme::Angle);
    const lint::Report report = lint::lint_circuit(c);
    EXPECT_FALSE(report.fired("dead-lightcone")) << report.to_string();
    EXPECT_FALSE(report.fired("dead-parameter")) << report.to_string();
}

TEST(DataflowRules, CliffordRegionNoteAnnotates)
{
    Circuit fully(2);
    fully.add_gate(GateKind::H, {0});
    fully.add_gate(GateKind::CX, {0, 1});
    fully.set_measured({0, 1});
    const lint::Report report = lint::lint_circuit(fully);
    EXPECT_TRUE(report.fired("clifford-region")) << report.to_string();
    bool saw_fully = false;
    for (const auto &d : report.diagnostics)
        if (d.rule == "clifford-region")
            saw_fully = d.message.find("stabilizer-simulable") !=
                        std::string::npos;
    EXPECT_TRUE(saw_fully) << report.to_string();
}

// ---------------------------------------------------------------------
// Ranking gauntlet: pruning is invisible to CNR/RepCap rankings.
// ---------------------------------------------------------------------

/**
 * Corpus of 6 circuits on a 5-qubit register: a live block on qubits
 * 0-3 of varying depth, plus planted dead structure on qubit 4.
 */
std::vector<Circuit>
dead_structure_corpus()
{
    std::vector<Circuit> corpus;
    elv::Rng rng(99);
    for (int k = 0; k < 6; ++k) {
        Circuit c(5);
        c.add_embedding(GateKind::RY, {0}, 0);
        c.add_embedding(GateKind::RY, {1}, 1);
        const GateKind rotations[] = {GateKind::RX, GateKind::RY,
                                      GateKind::RZ};
        for (int g = 0; g < 3 + k; ++g) {
            const int q = static_cast<int>(rng.uniform_index(4));
            c.add_variational(rotations[g % 3], {q});
            // Stay on the manila line coupling (0-1-2-3-4): pair each
            // qubit with its line neighbor so CNR needs no routing.
            if (g % 2 == 0)
                c.add_gate(GateKind::CX, {q, q == 3 ? 2 : q + 1});
        }
        // Planted dead structure: qubit 4 never couples to 0-3.
        c.add_variational(GateKind::RX, {4});
        c.add_gate(GateKind::H, {4});
        c.add_variational(GateKind::RZ, {4});
        c.set_measured({0, 1});
        corpus.push_back(std::move(c));
    }
    return corpus;
}

/** Descending-score index order with index tie-break (stable). */
std::vector<std::size_t>
ranking(const std::vector<double> &scores)
{
    std::vector<std::size_t> order(scores.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&scores](std::size_t a, std::size_t b) {
                         return scores[a] > scores[b];
                     });
    return order;
}

TEST(RankingGauntlet, CnrDensityIsInvariantUnderPruning)
{
    const dev::Device device = dev::make_device("ibmq_manila");
    const std::vector<Circuit> corpus = dead_structure_corpus();

    core::CnrOptions plain;
    plain.num_replicas = 4;
    core::CnrOptions pruning = plain;
    pruning.prune_dead_structure = true;

    std::vector<double> unpruned, pruned;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        // Fresh identically-seeded RNG per evaluation: the prune must
        // not shift the replica draws (it acts on the replica, after
        // construction), so both runs see identical Clifford replicas.
        elv::Rng r1(1000 + i), r2(1000 + i);
        unpruned.push_back(
            core::clifford_noise_resilience(corpus[i], device, r1, plain)
                .cnr);
        pruned.push_back(core::clifford_noise_resilience(corpus[i],
                                                         device, r2,
                                                         pruning)
                             .cnr);
    }
    for (std::size_t i = 0; i < corpus.size(); ++i)
        EXPECT_NEAR(unpruned[i], pruned[i], 1e-9)
            << "candidate " << i;
    EXPECT_EQ(ranking(unpruned), ranking(pruned));
}

TEST(RankingGauntlet, RepCapIsInvariantUnderPruning)
{
    // Tiny 2-class dataset with the 2 features the corpus embeds.
    qml::Dataset data;
    data.num_classes = 2;
    elv::Rng drng(7);
    for (int i = 0; i < 12; ++i) {
        const int label = i % 2;
        data.samples.push_back(
            {drng.uniform(0.0, 1.0) + label, drng.uniform(0.0, 1.0)});
        data.labels.push_back(label);
    }

    core::RepCapOptions plain;
    plain.samples_per_class = 3;
    plain.param_inits = 3;
    plain.num_bases = 2;
    core::RepCapOptions pruning = plain;
    pruning.prune_dead_structure = true;

    const std::vector<Circuit> corpus = dead_structure_corpus();
    std::vector<double> unpruned, pruned;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        // prune_to_lightcone preserves the declared parameter count,
        // so the theta_t draws stay aligned between the two runs.
        elv::Rng r1(2000 + i), r2(2000 + i);
        unpruned.push_back(core::representational_capacity(
                               corpus[i], data, r1, plain)
                               .repcap);
        pruned.push_back(core::representational_capacity(
                             corpus[i], data, r2, pruning)
                             .repcap);
    }
    for (std::size_t i = 0; i < corpus.size(); ++i)
        EXPECT_NEAR(unpruned[i], pruned[i], 1e-9)
            << "candidate " << i;
    EXPECT_EQ(ranking(unpruned), ranking(pruned));
}

TEST(RankingGauntlet, StabilizerCnrStaysDistributionSane)
{
    // The stabilizer backend re-samples shot noise per gate, so pruned
    // scores are only statistically identical — assert both land in
    // [0, 1] and within a loose shot-noise tolerance of each other.
    const dev::Device device = dev::make_device("ibmq_manila");
    const Circuit c = dead_structure_corpus()[0];
    core::CnrOptions options;
    options.backend = core::CnrBackend::Stabilizer;
    options.num_replicas = 4;
    options.shots = 4096;
    elv::Rng r1(42), r2(42);
    const double unpruned =
        core::clifford_noise_resilience(c, device, r1, options).cnr;
    options.prune_dead_structure = true;
    const double pruned =
        core::clifford_noise_resilience(c, device, r2, options).cnr;
    EXPECT_GE(pruned, 0.0);
    EXPECT_LE(pruned, 1.0);
    EXPECT_NEAR(unpruned, pruned, 0.1);
}

// ---------------------------------------------------------------------
// Trainer elision.
// ---------------------------------------------------------------------

TEST(TrainerPrune, LiveTrajectoriesAndLossMatchUnpruned)
{
    qml::Dataset data;
    data.num_classes = 2;
    elv::Rng drng(5);
    for (int i = 0; i < 16; ++i) {
        const int label = i % 2;
        data.samples.push_back({drng.uniform(0.0, 1.0) + 2.0 * label});
        data.labels.push_back(label);
    }

    const Circuit c = dead_tail_circuit();
    qml::TrainConfig config;
    config.epochs = 3;
    config.batch_size = 4;
    config.seed = 21;

    const qml::TrainResult plain = qml::train_circuit(c, data, config);
    config.prune_dead_structure = true;
    const qml::TrainResult pruned = qml::train_circuit(c, data, config);

    ASSERT_EQ(plain.params.size(), pruned.params.size());
    ASSERT_EQ(plain.loss_history.size(), pruned.loss_history.size());
    // Live slots (0, 1) followed identical trajectories; the dead slot
    // (2) has an identically-zero adjoint gradient, so element-wise
    // Adam leaves it at its init in BOTH runs — they agree everywhere.
    for (std::size_t s = 0; s < plain.params.size(); ++s)
        EXPECT_NEAR(plain.params[s], pruned.params[s], 1e-9)
            << "slot " << s;
    for (std::size_t e = 0; e < plain.loss_history.size(); ++e)
        EXPECT_NEAR(plain.loss_history[e], pruned.loss_history[e], 1e-9)
            << "epoch " << e;
    // Fewer executions of a smaller circuit, same result.
    EXPECT_EQ(plain.circuit_executions, pruned.circuit_executions);
}

TEST(TrainerPrune, CountsElisionMetrics)
{
    obs::Registry &registry = obs::Registry::global();
    registry.set_enabled(true);
    const obs::MetricsSnapshot before = registry.snapshot();
    auto counter_value = [](const obs::MetricsSnapshot &snap,
                            const std::string &name) -> std::uint64_t {
        for (const auto &c : snap.counters)
            if (c.name == name)
                return c.value;
        return 0;
    };

    qml::Dataset data;
    data.num_classes = 2;
    data.samples = {{0.1}, {2.2}, {0.3}, {2.4}};
    data.labels = {0, 1, 0, 1};
    qml::TrainConfig config;
    config.epochs = 1;
    config.batch_size = 2;
    config.prune_dead_structure = true;
    (void)qml::train_circuit(dead_tail_circuit(), data, config);

    const obs::MetricsSnapshot after = registry.snapshot();
#ifdef ELV_OBS_DISABLED
    // The instrumentation macros compile to no-ops: the elision still
    // runs (covered by the trajectory test above), but no counter can
    // move. Assert exactly that.
    EXPECT_EQ(counter_value(after, "lint.ops_elided"),
              counter_value(before, "lint.ops_elided"));
#else
    EXPECT_GT(counter_value(after, "lint.ops_elided"),
              counter_value(before, "lint.ops_elided"));
    EXPECT_GT(counter_value(after, "lint.params_elided"),
              counter_value(before, "lint.params_elided"));
#endif
    registry.set_enabled(false);
}

// ---------------------------------------------------------------------
// Config fingerprint.
// ---------------------------------------------------------------------

TEST(Fingerprint, PruneFlagIsFingerprintedWithHint)
{
    core::ElivagarConfig config;
    const std::uint64_t base = core::config_fingerprint(config);
    core::ElivagarConfig toggled = config;
    toggled.cnr.prune_dead_structure = true;
    toggled.repcap.prune_dead_structure = true;
    const std::uint64_t changed = core::config_fingerprint(toggled);
    EXPECT_NE(base, changed);
    const std::string hint =
        core::fingerprint_mismatch_hint(config, changed);
    EXPECT_NE(hint.find("pruning"), std::string::npos) << hint;
}

// ---------------------------------------------------------------------
// SARIF, JSON, and the baseline suppression file.
// ---------------------------------------------------------------------

std::vector<lint::ArtifactReport>
sample_reports()
{
    lint::Report report;
    report.add(lint::Severity::Warning, "dead-lightcone", 4,
               "ops outside the measurement lightcone");
    report.add(lint::Severity::Error, "qubit-bounds", 0, "out of range");
    lint::Report clean;
    clean.add(lint::Severity::Note, "clifford-region", -1,
              "const-Clifford region");
    return {{"a.txt", report}, {"b.txt", clean}};
}

TEST(Sarif, DocumentShape)
{
    const std::string doc = lint::to_sarif(sample_reports(), nullptr);
    EXPECT_NE(doc.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(doc.find("sarif-2.1.0.json"), std::string::npos);
    EXPECT_NE(doc.find("\"name\": \"elvlint\""), std::string::npos);
    EXPECT_NE(doc.find("\"ruleId\": \"dead-lightcone\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"ruleId\": \"qubit-bounds\""),
              std::string::npos);
    // Op 4 of a native-text file sits on line 7 (header + qubits + 1).
    EXPECT_NE(doc.find("\"startLine\": 7"), std::string::npos);
    EXPECT_NE(doc.find("\"level\": \"error\""), std::string::npos);
    EXPECT_NE(doc.find("\"level\": \"note\""), std::string::npos);
    EXPECT_NE(doc.find("partialFingerprints"), std::string::npos);
    // Every catalog rule appears in the driver's rule table.
    for (const auto &rule : lint::rule_catalog())
        EXPECT_NE(doc.find("\"id\": \"" + rule.id + "\""),
                  std::string::npos)
            << rule.id;
}

TEST(Sarif, BaselineSuppressionRoundTrip)
{
    const auto reports = sample_reports();
    const std::string rendered = lint::Baseline::render(reports);
    const lint::Baseline baseline = lint::Baseline::parse(rendered);
    EXPECT_EQ(baseline.size(), 3u);
    for (const auto &entry : reports)
        for (const auto &d : entry.report.diagnostics)
            EXPECT_TRUE(baseline.contains(
                lint::diagnostic_fingerprint(entry.artifact, d)));

    // Full suppression zeroes the gate counts.
    const lint::FindingCounts counts =
        lint::count_findings(reports, &baseline);
    EXPECT_EQ(counts.errors, 0u);
    EXPECT_EQ(counts.warnings, 0u);
    EXPECT_EQ(counts.suppressed, 3u);

    // Without the baseline the counts are live.
    const lint::FindingCounts live =
        lint::count_findings(reports, nullptr);
    EXPECT_EQ(live.errors, 1u);
    EXPECT_EQ(live.warnings, 1u);
    EXPECT_EQ(live.notes, 1u);
    EXPECT_EQ(live.suppressed, 0u);

    // Suppressed findings carry the SARIF suppression object.
    const std::string doc = lint::to_sarif(reports, &baseline);
    EXPECT_NE(doc.find("\"suppressions\""), std::string::npos);
    EXPECT_NE(doc.find("\"kind\": \"external\""), std::string::npos);

    // Comments and blanks are ignored; unknown fingerprints miss.
    const lint::Baseline sparse =
        lint::Baseline::parse("# comment\n\nx|y|op0|beef\n");
    EXPECT_EQ(sparse.size(), 1u);
    EXPECT_TRUE(sparse.contains("x|y|op0|beef"));
    EXPECT_FALSE(sparse.contains("x|y|op1|beef"));
}

TEST(Sarif, JsonRenderingCarriesCounts)
{
    const std::string doc = lint::to_json(sample_reports(), nullptr);
    EXPECT_NE(doc.find("\"artifact\": \"a.txt\""), std::string::npos);
    EXPECT_NE(doc.find("\"errors\": 1"), std::string::npos);
    EXPECT_NE(doc.find("\"warnings\": 1"), std::string::npos);
    EXPECT_NE(doc.find("\"rule\": \"dead-lightcone\""),
              std::string::npos);
}

} // namespace
