/**
 * @file
 * Distributed sharded search tests (ISSUE acceptance criteria): the
 * shard partitioner, the coordinator/worker wire format, and above all
 * the determinism gauntlet — the merged ranking must be bit-identical
 * to the single-process search at 1/2/3/7 workers (including counts
 * that do not divide the pool), after a worker is SIGKILLed mid-shard
 * and its shard reissued, after falling back to in-process evaluation
 * when the worker binary cannot be spawned at all, and when a run
 * resumes from its shard journals under a different worker count.
 *
 * The worker binary under test is the real elivagar_worker (path baked
 * in via ELV_WORKER_BIN), fork/exec'd exactly as in production.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "circuit/serialize.hpp"
#include "common/logging.hpp"
#include "core/checkpoint.hpp"
#include "core/search.hpp"
#include "dist/channel.hpp"
#include "dist/coordinator.hpp"
#include "dist/wire.hpp"
#include "qml/synthetic.hpp"
#include "server/job.hpp"
#include "server/json_value.hpp"

namespace {

using namespace elv;
using namespace elv::dist;

/** The small spec every gauntlet run searches (seconds per run). */
srv::JobSpec
small_spec()
{
    srv::JobSpec spec;
    spec.benchmark = "moons";
    spec.candidates = 10;
    spec.seed = 11;
    spec.scale = 0.1;
    return spec;
}

/** Single-process reference with the identical JobSpec mapping. */
core::SearchResult
serial_reference(const srv::JobSpec &spec)
{
    const qml::Benchmark bench =
        qml::make_benchmark(spec.benchmark, spec.seed, spec.scale);
    const dev::Device device = dev::make_device(spec.device);
    const core::ElivagarConfig config =
        srv::job_search_config(spec, bench.spec, 1, "");
    return core::elivagar_search(device, bench.train, config);
}

/** DistConfig pointing at the real worker binary from the build. */
DistConfig
dist_config(int workers)
{
    DistConfig dc;
    dc.workers = workers;
    dc.worker_binary = ELV_WORKER_BIN;
    dc.handshake_timeout_sec = 60.0;
    dc.record_timeout_sec = 60.0;
    return dc;
}

/** Fresh state directory under the gtest temp dir. */
std::string
fresh_state_dir(const std::string &name)
{
    const std::string path =
        ::testing::TempDir() + "elv_dist_" + name;
    std::filesystem::remove_all(path);
    return path;
}

/** Bitwise equality of the full merged ranking (hexfloat compares). */
void
expect_bit_identical(const core::SearchResult &a,
                     const core::SearchResult &b)
{
    EXPECT_EQ(circ::to_text(a.best_circuit),
              circ::to_text(b.best_circuit));
    EXPECT_EQ(core::double_to_hex(a.best_score),
              core::double_to_hex(b.best_score));
    EXPECT_EQ(a.survivors, b.survivors);
    EXPECT_EQ(a.cnr_executions, b.cnr_executions);
    EXPECT_EQ(a.repcap_executions, b.repcap_executions);
    EXPECT_EQ(a.degraded_candidates, b.degraded_candidates);
    ASSERT_EQ(a.candidates.size(), b.candidates.size());
    for (std::size_t n = 0; n < a.candidates.size(); ++n) {
        EXPECT_EQ(circ::to_text_line(a.candidates[n].circuit),
                  circ::to_text_line(b.candidates[n].circuit))
            << n;
        EXPECT_EQ(core::double_to_hex(a.candidates[n].cnr),
                  core::double_to_hex(b.candidates[n].cnr))
            << n;
        EXPECT_EQ(core::double_to_hex(a.candidates[n].repcap),
                  core::double_to_hex(b.candidates[n].repcap))
            << n;
        EXPECT_EQ(core::double_to_hex(a.candidates[n].score),
                  core::double_to_hex(b.candidates[n].score))
            << n;
        EXPECT_EQ(a.candidates[n].rejected_by_cnr,
                  b.candidates[n].rejected_by_cnr)
            << n;
    }
}

TEST(DistPartition, EvenAndRemainderSplits)
{
    // 10 over 2: two fives.
    auto plan = partition_indices(10, 2);
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan[0], std::make_pair(0, 5));
    EXPECT_EQ(plan[1], std::make_pair(5, 10));

    // 10 over 3: the first shard takes the extra element.
    plan = partition_indices(10, 3);
    ASSERT_EQ(plan.size(), 3u);
    EXPECT_EQ(plan[0], std::make_pair(0, 4));
    EXPECT_EQ(plan[1], std::make_pair(4, 7));
    EXPECT_EQ(plan[2], std::make_pair(7, 10));

    // 10 over 7: sizes differ by at most one and cover [0, 10).
    plan = partition_indices(10, 7);
    ASSERT_EQ(plan.size(), 7u);
    int covered = 0;
    for (std::size_t s = 0; s < plan.size(); ++s) {
        EXPECT_EQ(plan[s].first, covered);
        const int size = plan[s].second - plan[s].first;
        EXPECT_GE(size, 1);
        EXPECT_LE(size, 2);
        covered = plan[s].second;
    }
    EXPECT_EQ(covered, 10);
}

TEST(DistPartition, MoreShardsThanWorkYieldsEmptyRanges)
{
    const auto plan = partition_indices(3, 5);
    ASSERT_EQ(plan.size(), 5u);
    EXPECT_EQ(plan[0], std::make_pair(0, 1));
    EXPECT_EQ(plan[1], std::make_pair(1, 2));
    EXPECT_EQ(plan[2], std::make_pair(2, 3));
    EXPECT_EQ(plan[3], std::make_pair(3, 3)); // empty
    EXPECT_EQ(plan[4], std::make_pair(3, 3)); // empty
}

TEST(DistWire, ConfigureRoundTrip)
{
    srv::JobSpec spec = small_spec();
    spec.precision = "f32";
    const std::string line = make_configure(spec, 3, 0xdeadbeefcafe01ULL, 4);
    CoordRequest request;
    std::string error;
    ASSERT_TRUE(parse_coord_request(line, request, error)) << error;
    EXPECT_EQ(request.kind, CoordRequest::Kind::Configure);
    EXPECT_EQ(request.spec.benchmark, spec.benchmark);
    EXPECT_EQ(request.spec.candidates, spec.candidates);
    EXPECT_EQ(request.spec.seed, spec.seed);
    EXPECT_EQ(request.spec.precision, "f32");
    EXPECT_EQ(request.threads, 3);
    EXPECT_EQ(request.fingerprint, 0xdeadbeefcafe01ULL);
    EXPECT_EQ(request.crash_after, 4);
}

TEST(DistWire, StageAndRecordRoundTrips)
{
    CoordRequest request;
    std::string error;
    ASSERT_TRUE(parse_coord_request(
        make_stage_request("cnr", {3, 1, 4}), request, error))
        << error;
    EXPECT_EQ(request.kind, CoordRequest::Kind::Stage);
    EXPECT_EQ(request.stage, "cnr");
    EXPECT_EQ(request.indices, (std::vector<int>{3, 1, 4}));

    // CNR record: hexfloat doubles survive bit-exactly.
    core::CandidateCnr cnr;
    cnr.cnr = 0.12345678901234567;
    cnr.executions = 16;
    cnr.degraded = true;
    cnr.retries = 2;
    WorkerEvent event;
    ASSERT_TRUE(
        parse_worker_event(make_cnr_record(7, cnr), event, error))
        << error;
    EXPECT_EQ(event.kind, WorkerEvent::Kind::Cnr);
    EXPECT_EQ(event.index, 7);
    EXPECT_EQ(core::double_to_hex(event.cnr.cnr),
              core::double_to_hex(cnr.cnr));
    EXPECT_EQ(event.cnr.executions, 16u);
    EXPECT_TRUE(event.cnr.degraded);
    EXPECT_EQ(event.cnr.retries, 2u);

    core::CandidateRepCap repcap;
    repcap.repcap = 0.9999999999999999;
    repcap.executions = 1024;
    ASSERT_TRUE(parse_worker_event(make_repcap_record(2, repcap),
                                   event, error))
        << error;
    EXPECT_EQ(event.kind, WorkerEvent::Kind::RepCap);
    EXPECT_EQ(event.index, 2);
    EXPECT_EQ(core::double_to_hex(event.repcap.repcap),
              core::double_to_hex(repcap.repcap));
    EXPECT_EQ(event.repcap.executions, 1024u);

    ASSERT_TRUE(
        parse_worker_event(make_stage_done("cnr", 5), event, error))
        << error;
    EXPECT_EQ(event.kind, WorkerEvent::Kind::Done);
    EXPECT_EQ(event.stage, "cnr");
    EXPECT_EQ(event.count, 5u);

    ASSERT_TRUE(
        parse_worker_event(make_error("backend on fire"), event, error))
        << error;
    EXPECT_EQ(event.kind, WorkerEvent::Kind::Error);
    EXPECT_EQ(event.message, "backend on fire");

    ASSERT_TRUE(
        parse_worker_event(make_ready(0x42ULL), event, error))
        << error;
    EXPECT_EQ(event.kind, WorkerEvent::Kind::Ready);
    EXPECT_EQ(event.fingerprint, 0x42ULL);

    EXPECT_FALSE(parse_worker_event("{\"ev\":\"nonsense\"}", event,
                                    error));
    EXPECT_FALSE(parse_worker_event("not json at all", event, error));
}

TEST(DistWire, EndpointParsing)
{
    std::string host;
    std::uint16_t port = 0;
    ASSERT_TRUE(parse_endpoint("10.1.2.3:7400", host, port));
    EXPECT_EQ(host, "10.1.2.3");
    EXPECT_EQ(port, 7400);
    ASSERT_TRUE(parse_endpoint(":7401", host, port));
    EXPECT_EQ(host, "127.0.0.1");
    EXPECT_EQ(port, 7401);
    ASSERT_TRUE(parse_endpoint("7402", host, port));
    EXPECT_EQ(host, "127.0.0.1");
    EXPECT_EQ(port, 7402);
    EXPECT_FALSE(parse_endpoint("host:", host, port));
    EXPECT_FALSE(parse_endpoint("host:99999", host, port));
    EXPECT_FALSE(parse_endpoint("", host, port));
}

TEST(DistJobSpec, WorkersFieldRoundTripsAndValidates)
{
    srv::JobSpec spec = small_spec();
    spec.workers = 4;
    srv::JsonValue value;
    std::string error;
    ASSERT_TRUE(srv::json_parse(spec.to_json(), value, error)) << error;
    srv::JobSpec parsed;
    ASSERT_TRUE(srv::JobSpec::from_json(value, parsed, error)) << error;
    EXPECT_EQ(parsed.workers, 4);

    srv::JobSpec bad = small_spec();
    bad.workers = -1;
    EXPECT_THROW(bad.check(), elv::UsageError);
    bad.workers = 65;
    EXPECT_THROW(bad.check(), elv::UsageError);
}

/**
 * The headline guarantee: the merged distributed ranking equals the
 * single-process ranking bit for bit — at worker counts that divide
 * the pool, that do not divide it, and that exceed half of it.
 */
TEST(DistDeterminism, ShardCountGauntletMatchesSerialBitwise)
{
    const srv::JobSpec spec = small_spec();
    const core::SearchResult reference = serial_reference(spec);
    for (const int workers : {1, 2, 3, 7}) {
        const DistResult dist =
            distributed_search(spec, dist_config(workers));
        SCOPED_TRACE("workers=" + std::to_string(workers));
        expect_bit_identical(reference, dist.result);
        EXPECT_EQ(dist.stats.workers_spawned, workers);
        EXPECT_EQ(dist.stats.records_received,
                  static_cast<std::uint64_t>(
                      spec.candidates + reference.survivors));
        EXPECT_EQ(dist.stats.shards_reissued, 0);
        EXPECT_EQ(dist.stats.fallback_records, 0u);
    }
}

/**
 * Crash tolerance: SIGKILL a worker after two streamed records, mid
 * CNR shard. The shard is reissued to a fresh worker minus the
 * journal-free already-received records, and the merged ranking is
 * still bit-identical.
 */
TEST(DistDeterminism, WorkerKilledMidShardIsReissuedBitIdentical)
{
    const srv::JobSpec spec = small_spec();
    const core::SearchResult reference = serial_reference(spec);
    DistConfig dc = dist_config(2);
    dc.crash_after = 2;
    const DistResult dist = distributed_search(spec, dc);
    expect_bit_identical(reference, dist.result);
    EXPECT_GE(dist.stats.shards_reissued, 1);
    EXPECT_GE(dist.stats.worker_failures, 1);
    // The crashed worker was replaced by a fresh spawn.
    EXPECT_GE(dist.stats.workers_spawned, 3);
}

/** A worker binary that cannot even spawn degrades to in-process
 * evaluation — the run completes bit-identically, not at all fast. */
TEST(DistDeterminism, UnspawnableWorkerFallsBackInProcess)
{
    const srv::JobSpec spec = small_spec();
    const core::SearchResult reference = serial_reference(spec);
    DistConfig dc = dist_config(2);
    dc.worker_binary = "/nonexistent/elivagar_worker_missing";
    dc.max_reissues = 0;
    const DistResult dist = distributed_search(spec, dc);
    expect_bit_identical(reference, dist.result);
    EXPECT_GT(dist.stats.fallback_records, 0u);
    EXPECT_EQ(dist.stats.records_received, 0u);
}

/** Without the fallback, an unusable worker fleet is an error, with
 * the shard's diagnostics in the message. */
TEST(DistDeterminism, ExhaustedReissuesWithoutFallbackThrows)
{
    const srv::JobSpec spec = small_spec();
    DistConfig dc = dist_config(1);
    dc.worker_binary = "/nonexistent/elivagar_worker_missing";
    dc.max_reissues = 0;
    dc.allow_local_fallback = false;
    EXPECT_THROW(distributed_search(spec, dc), std::runtime_error);
}

/**
 * Whole-run resume: a completed run's state_dir replays every record
 * from the shard journals — no worker is spawned at all — and a
 * *different* worker count reads the same journals (the union of
 * shard-*.journal is the resume state, not the per-shard layout).
 */
TEST(DistDeterminism, StateDirResumesUnderDifferentWorkerCount)
{
    const srv::JobSpec spec = small_spec();
    const core::SearchResult reference = serial_reference(spec);
    const std::string state_dir = fresh_state_dir("resume");

    DistConfig first = dist_config(2);
    first.state_dir = state_dir;
    const DistResult original = distributed_search(spec, first);
    expect_bit_identical(reference, original.result);
    EXPECT_FALSE(original.result.resumed);

    DistConfig second = dist_config(3);
    second.state_dir = state_dir;
    const DistResult resumed = distributed_search(spec, second);
    expect_bit_identical(reference, resumed.result);
    EXPECT_TRUE(resumed.result.resumed);
    EXPECT_EQ(resumed.stats.workers_spawned, 0);
    EXPECT_EQ(resumed.stats.records_received, 0u);
    EXPECT_EQ(resumed.stats.records_resumed,
              static_cast<std::uint64_t>(
                  spec.candidates + reference.survivors));
}

/** A state_dir written under a different configuration is refused,
 * with the likely culprit named (precision here). */
TEST(DistDeterminism, StateDirFromDifferentConfigRefusedWithHint)
{
    const srv::JobSpec spec = small_spec();
    const std::string state_dir = fresh_state_dir("fingerprint");

    DistConfig first = dist_config(2);
    first.state_dir = state_dir;
    distributed_search(spec, first);

    srv::JobSpec flipped = spec;
    flipped.precision = "f32";
    DistConfig second = dist_config(2);
    second.state_dir = state_dir;
    try {
        distributed_search(flipped, second);
        FAIL() << "expected the mismatched state_dir to be refused";
    } catch (const elv::UsageError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("fingerprint"), std::string::npos) << what;
        EXPECT_NE(what.find("precision"), std::string::npos) << what;
    }
}

/** More workers than candidates: the surplus shards are empty and no
 * process is spawned for them. */
TEST(DistDeterminism, MoreWorkersThanCandidates)
{
    srv::JobSpec spec = small_spec();
    spec.candidates = 3;
    const core::SearchResult reference = serial_reference(spec);
    const DistResult dist = distributed_search(spec, dist_config(5));
    expect_bit_identical(reference, dist.result);
    EXPECT_LE(dist.stats.workers_spawned, 3);
}

} // namespace
