/**
 * @file
 * Integration tests across subsystems: every method of the paper's
 * comparison (Sec. 7.4) runs end to end — search where applicable, the
 * shared training methodology, noiseless and noisy evaluation — and
 * produces sane, hardware-native results on a common benchmark/device
 * cell. Also covers the shot-noise inference path and cross-module
 * determinism.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/quantum_supernet.hpp"
#include "baselines/quantumnas.hpp"
#include "baselines/simple.hpp"
#include "baselines/supercircuit.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "compiler/compile.hpp"
#include "core/search.hpp"
#include "noise/noise_model.hpp"
#include "qml/synthetic.hpp"
#include "qml/trainer.hpp"

namespace {

using namespace elv;

struct Cell
{
    qml::Benchmark bench;
    dev::Device device;

    Cell()
        : bench(qml::make_benchmark("moons", 11, 0.2)),
          device(dev::make_device("ibmq_jakarta"))
    {
    }
};

/** Train a physical circuit and return (ideal, noisy) accuracies. */
std::pair<double, double>
train_eval(const circ::Circuit &physical, const Cell &cell,
           std::uint64_t seed)
{
    qml::TrainConfig tc;
    tc.epochs = 30;
    tc.seed = seed;
    const auto trained =
        qml::train_circuit(physical, cell.bench.train, tc);
    const double ideal =
        qml::evaluate(physical, trained.params, cell.bench.test).accuracy;
    const noise::NoisyDensitySimulator noisy(cell.device);
    const double hw =
        qml::evaluate(physical, trained.params, cell.bench.test,
                      [&noisy](const circ::Circuit &c,
                               const std::vector<double> &p,
                               const std::vector<double> &x) {
                          return noisy.run_distribution(c, p, x);
                      })
            .accuracy;
    return {ideal, hw};
}

TEST(EndToEnd, RandomBaseline)
{
    Cell cell;
    elv::Rng rng(1);
    base::BaselineShape shape;
    shape.num_qubits = 4;
    shape.num_features = 2;
    shape.num_params = 16;
    shape.num_meas = 1;
    const auto circuits = base::random_baseline(shape, 2, rng);
    for (const auto &logical : circuits) {
        const auto compiled =
            comp::compile_for_device(logical, cell.device, 3, rng);
        ASSERT_TRUE(
            comp::is_hardware_native(compiled.circuit,
                                     cell.device.topology));
        // Unselected random circuits are smoke-tested for pipeline
        // integrity, not quality (they can land below chance on the
        // small test split).
        const auto [ideal, hw] = train_eval(compiled.circuit, cell, 5);
        EXPECT_GT(ideal, 0.2);
        EXPECT_GT(hw, 0.2);
    }
}

TEST(EndToEnd, HumanBaselineAllSchemes)
{
    Cell cell;
    elv::Rng rng(2);
    base::BaselineShape shape;
    shape.num_qubits = 4;
    shape.num_features = 2;
    shape.num_params = 16;
    shape.num_meas = 1;
    for (const auto &logical : base::human_baseline(shape)) {
        if (logical.has_amplitude_embedding()) {
            // Amplitude circuits evaluate noiselessly end to end.
            qml::TrainConfig tc;
            tc.epochs = 20;
            tc.seed = 3;
            const auto trained =
                qml::train_circuit(logical, cell.bench.train, tc);
            EXPECT_GT(qml::evaluate(logical, trained.params,
                                    cell.bench.test)
                          .accuracy,
                      0.2);
        } else {
            const auto compiled =
                comp::compile_for_device(logical, cell.device, 3, rng);
            const auto [ideal, hw] =
                train_eval(compiled.circuit, cell, 7);
            EXPECT_GT(ideal, 0.2);
            EXPECT_GT(hw, 0.2);
        }
    }
}

TEST(EndToEnd, QuantumSupernetPipeline)
{
    Cell cell;
    elv::Rng rng(3);
    const base::SuperCircuit super(4, 3, 2, 1, true);
    qml::TrainConfig tc;
    tc.epochs = 10;
    tc.seed = 4;
    const auto trained =
        base::train_supercircuit(super, cell.bench.train, 12, tc);
    base::SupernetConfig config;
    config.num_samples = 8;
    config.target_params = 12;
    config.valid_samples = 10;
    const auto found = base::supernet_search(
        super, trained.shared_params, cell.bench.test, config);
    const auto compiled = comp::compile_for_device(found.best_logical,
                                                   cell.device, 3, rng);
    const auto [ideal, hw] = train_eval(compiled.circuit, cell, 9);
    EXPECT_GT(ideal, 0.4);
    EXPECT_GT(hw, 0.4);
}

TEST(EndToEnd, QuantumNasPipeline)
{
    Cell cell;
    elv::Rng rng(4);
    const base::SuperCircuit super(4, 3, 2, 1);
    qml::TrainConfig tc;
    tc.epochs = 10;
    tc.seed = 5;
    const auto trained =
        base::train_supercircuit(super, cell.bench.train, 12, tc);
    base::QuantumNasConfig config;
    config.population = 4;
    config.generations = 2;
    config.target_params = 12;
    config.valid_samples = 8;
    const auto found = base::quantumnas_search(
        super, trained.shared_params, cell.device, cell.bench.test,
        config);
    ASSERT_TRUE(comp::is_hardware_native(found.best_physical,
                                         cell.device.topology));
    const auto [ideal, hw] = train_eval(found.best_physical, cell, 10);
    EXPECT_GT(ideal, 0.4);
    EXPECT_GT(hw, 0.4);
}

TEST(EndToEnd, ElivagarPipeline)
{
    Cell cell;
    core::ElivagarConfig config;
    config.num_candidates = 16;
    config.candidate.num_qubits = 4;
    config.candidate.num_params = 16;
    config.candidate.num_embeds = 6;
    config.candidate.num_meas = 1;
    config.candidate.num_features = 2;
    config.cnr.num_replicas = 6;
    config.repcap.samples_per_class = 8;
    config.repcap.param_inits = 8;
    config.seed = 21;
    const auto found =
        core::elivagar_search(cell.device, cell.bench.train, config);
    ASSERT_TRUE(comp::is_hardware_native(found.best_circuit,
                                         cell.device.topology));
    const auto [ideal, hw] = train_eval(found.best_circuit, cell, 12);
    EXPECT_GT(ideal, 0.5);
    EXPECT_GT(hw, 0.5);
}

TEST(EndToEnd, SearchIsDeterministic)
{
    Cell cell;
    core::ElivagarConfig config;
    config.num_candidates = 8;
    config.candidate.num_qubits = 4;
    config.candidate.num_params = 12;
    config.candidate.num_embeds = 4;
    config.candidate.num_meas = 1;
    config.candidate.num_features = 2;
    config.cnr.num_replicas = 4;
    config.repcap.samples_per_class = 4;
    config.repcap.param_inits = 4;
    config.seed = 33;
    const auto a =
        core::elivagar_search(cell.device, cell.bench.train, config);
    const auto b =
        core::elivagar_search(cell.device, cell.bench.train, config);
    EXPECT_DOUBLE_EQ(a.best_score, b.best_score);
    EXPECT_EQ(a.best_circuit.to_string(), b.best_circuit.to_string());
    EXPECT_EQ(a.cnr_executions, b.cnr_executions);
}

TEST(ShotNoise, HistogramIsNormalizedAndConverges)
{
    Cell cell;
    elv::Rng rng(6);
    const circ::Circuit c =
        circ::build_random_rxyz_cz(3, 2, 8, 2, rng);
    std::vector<double> params(8);
    for (auto &p : params)
        p = rng.uniform(-M_PI, M_PI);
    const std::vector<double> x = {0.3, -0.5};

    const auto exact_fn = qml::statevector_distribution();
    const auto exact = exact_fn(c, params, x);

    const auto few = qml::with_shot_noise(exact_fn, 64, 1)(c, params, x);
    double total = 0.0;
    for (double p : few)
        total += p;
    EXPECT_NEAR(total, 1.0, 1e-12);

    const auto many =
        qml::with_shot_noise(exact_fn, 200000, 2)(c, params, x);
    EXPECT_LT(total_variation_distance(exact, many), 0.01);
}

TEST(ShotNoise, FewShotsDegradeAccuracy)
{
    // On a trained circuit, 8-shot inference must be no better than
    // exact inference (and typically worse).
    Cell cell;
    elv::Rng rng(8);
    const circ::Circuit c =
        circ::build_random_rxyz_cz(4, 2, 16, 1, rng);
    qml::TrainConfig tc;
    tc.epochs = 30;
    tc.seed = 14;
    const auto trained = qml::train_circuit(c, cell.bench.train, tc);

    const double exact_acc =
        qml::evaluate(c, trained.params, cell.bench.test).accuracy;
    const double few_shot_acc =
        qml::evaluate(c, trained.params, cell.bench.test,
                      qml::with_shot_noise(
                          qml::statevector_distribution(), 4, 3))
            .accuracy;
    EXPECT_LE(few_shot_acc, exact_acc + 0.1);
}

} // namespace
