/**
 * @file
 * Execution-layer tests: distribution validation guardrails, retry
 * policy arithmetic, device calibration validation, seeded fault
 * injection, and the ResilientExecutor's retry/degradation/determinism
 * contract. Also covers the single-line circuit serialization used by
 * the search journal.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "circuit/serialize.hpp"
#include "common/logging.hpp"
#include "common/retry.hpp"
#include "common/rng.hpp"
#include "common/validate.hpp"
#include "core/candidate_gen.hpp"
#include "exec/distribution.hpp"
#include "exec/executor.hpp"
#include "exec/fault_injector.hpp"
#include "exec/resilient.hpp"
#include "qml/classifier.hpp"

namespace {

using namespace elv;
using namespace elv::exec;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/** A 3-qubit Clifford circuit every backend supports. */
circ::Circuit
clifford_circuit()
{
    circ::Circuit c(3);
    c.add_gate(circ::GateKind::H, {0});
    c.add_gate(circ::GateKind::CX, {0, 1});
    c.add_gate(circ::GateKind::S, {1});
    c.add_gate(circ::GateKind::CX, {1, 2});
    c.set_measured({0, 1, 2});
    return c;
}

/** A parameterized circuit only the density/noiseless rungs support. */
circ::Circuit
variational_circuit()
{
    circ::Circuit c(2);
    c.add_variational(circ::GateKind::RY, {0});
    c.add_gate(circ::GateKind::CX, {0, 1});
    c.add_variational(circ::GateKind::RZ, {1});
    c.set_measured({0, 1});
    return c;
}

// ---------------------------------------------------------------------
// validate_distribution
// ---------------------------------------------------------------------

TEST(ValidateDistribution, AcceptsExactDistribution)
{
    std::vector<double> probs = {0.25, 0.25, 0.5};
    EXPECT_TRUE(is_valid_distribution(probs));
    EXPECT_NO_THROW(validate_distribution(
        probs, DistributionPolicy::Throw, "test"));
}

TEST(ValidateDistribution, RejectsNaNAndInf)
{
    for (const double poison : {kNaN, kInf, -kInf}) {
        std::vector<double> probs = {0.5, poison, 0.5};
        EXPECT_FALSE(is_valid_distribution(probs));
        EXPECT_THROW(validate_distribution(
                         probs, DistributionPolicy::Renormalize, "test"),
                     DistributionError);
    }
}

TEST(ValidateDistribution, RejectsNegativeMass)
{
    std::vector<double> probs = {0.6, -0.2, 0.6};
    EXPECT_THROW(validate_distribution(
                     probs, DistributionPolicy::Renormalize, "test"),
                 DistributionError);
}

TEST(ValidateDistribution, RejectsEmptyAndZeroMass)
{
    std::vector<double> empty;
    EXPECT_THROW(validate_distribution(
                     empty, DistributionPolicy::Renormalize, "test"),
                 DistributionError);
    std::vector<double> zeros = {0.0, 0.0};
    EXPECT_THROW(validate_distribution(
                     zeros, DistributionPolicy::Renormalize, "test"),
                 DistributionError);
}

TEST(ValidateDistribution, RenormalizeRepairsDriftThrowDoesNot)
{
    std::vector<double> drifted = {0.3, 0.3, 0.3}; // sums to 0.9
    std::vector<double> copy = drifted;
    EXPECT_THROW(validate_distribution(copy, DistributionPolicy::Throw,
                                       "test"),
                 DistributionError);
    validate_distribution(drifted, DistributionPolicy::Renormalize,
                          "test");
    double sum = 0.0;
    for (double p : drifted)
        sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ValidateDistribution, ClipsTinyNegativesUnderRenormalize)
{
    std::vector<double> probs = {0.5, -1e-12, 0.5};
    validate_distribution(probs, DistributionPolicy::Renormalize,
                          "test");
    EXPECT_GE(probs[1], 0.0);
    EXPECT_TRUE(is_valid_distribution(probs, 1e-9));
}

TEST(ValidateDistribution, ErrorNamesTheProducer)
{
    std::vector<double> probs = {kNaN};
    try {
        validate_distribution(probs, DistributionPolicy::Throw,
                              "unit-test producer");
        FAIL() << "expected DistributionError";
    } catch (const DistributionError &e) {
        EXPECT_NE(std::string(e.what()).find("unit-test producer"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------------
// RetryPolicy
// ---------------------------------------------------------------------

TEST(RetryPolicy, BackoffGrowsExponentiallyWithoutJitter)
{
    RetryPolicy policy;
    policy.initial_backoff_ms = 100.0;
    policy.backoff_multiplier = 2.0;
    policy.max_backoff_ms = 550.0;
    policy.jitter = 0.0;
    Rng rng(7);
    EXPECT_DOUBLE_EQ(policy.backoff_delay_ms(0, rng), 100.0);
    EXPECT_DOUBLE_EQ(policy.backoff_delay_ms(1, rng), 200.0);
    EXPECT_DOUBLE_EQ(policy.backoff_delay_ms(2, rng), 400.0);
    // Capped by max_backoff_ms from here on.
    EXPECT_DOUBLE_EQ(policy.backoff_delay_ms(3, rng), 550.0);
    EXPECT_DOUBLE_EQ(policy.backoff_delay_ms(9, rng), 550.0);
}

TEST(RetryPolicy, JitterStaysWithinBand)
{
    RetryPolicy policy;
    policy.initial_backoff_ms = 100.0;
    policy.jitter = 0.25;
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
        const double d = policy.backoff_delay_ms(0, rng);
        EXPECT_GE(d, 75.0);
        EXPECT_LE(d, 125.0);
    }
}

TEST(RetryPolicy, FullJitterStaysWithinBoundedWindow)
{
    RetryPolicy policy;
    policy.initial_backoff_ms = 100.0;
    policy.jitter = 0.25;
    policy.full_jitter = true;
    Rng rng(11);
    // Bounded full jitter draws from [nominal * (1 - j), nominal]: it
    // only ever shortens the delay, never stretches past the nominal.
    bool below_nominal = false;
    for (int i = 0; i < 200; ++i) {
        const double d = policy.backoff_delay_ms(0, rng);
        EXPECT_GE(d, 75.0);
        EXPECT_LE(d, 100.0);
        below_nominal |= d < 99.0;
    }
    EXPECT_TRUE(below_nominal);
}

TEST(RetryPolicy, ClassicFullJitterSpansDownToZero)
{
    RetryPolicy policy;
    policy.initial_backoff_ms = 100.0;
    policy.jitter = 1.0; // classic full jitter: [0, nominal]
    policy.full_jitter = true;
    Rng rng(13);
    double lo = 1e300, hi = 0.0;
    for (int i = 0; i < 500; ++i) {
        const double d = policy.backoff_delay_ms(0, rng);
        EXPECT_GE(d, 0.0);
        EXPECT_LE(d, 100.0);
        lo = std::min(lo, d);
        hi = std::max(hi, d);
    }
    // The window is actually exercised, not collapsed.
    EXPECT_LT(lo, 20.0);
    EXPECT_GT(hi, 80.0);
}

TEST(RetryPolicy, FullJitterDeterministicGivenSeed)
{
    RetryPolicy policy;
    policy.full_jitter = true;
    Rng a(42), b(42);
    for (int i = 0; i < 32; ++i)
        EXPECT_DOUBLE_EQ(policy.backoff_delay_ms(i % 5, a),
                         policy.backoff_delay_ms(i % 5, b));
}

TEST(RetryPolicy, DeterministicGivenSeed)
{
    RetryPolicy policy;
    Rng a(42), b(42);
    for (int i = 0; i < 32; ++i)
        EXPECT_DOUBLE_EQ(policy.backoff_delay_ms(i % 5, a),
                         policy.backoff_delay_ms(i % 5, b));
}

TEST(RetryPolicy, RejectsNonsense)
{
    RetryPolicy policy;
    policy.max_attempts = 0;
    EXPECT_THROW(policy.check(), UsageError);
    policy = RetryPolicy{};
    policy.jitter = 1.5;
    EXPECT_THROW(policy.check(), UsageError);
    policy = RetryPolicy{};
    policy.backoff_multiplier = 0.5;
    EXPECT_THROW(policy.check(), UsageError);
}

// ---------------------------------------------------------------------
// Device calibration validation
// ---------------------------------------------------------------------

TEST(DeviceValidate, CatalogDevicesAreValid)
{
    for (const std::string &name : dev::device_catalog())
        EXPECT_NO_THROW(dev::make_device(name).validate()) << name;
}

TEST(DeviceValidate, RejectsTruncatedCalibration)
{
    dev::Device device = dev::make_device("ibm_lagos");
    device.readout_error.pop_back();
    EXPECT_THROW(device.validate(), UsageError);
}

TEST(DeviceValidate, RejectsOutOfRangeRates)
{
    dev::Device device = dev::make_device("ibm_lagos");
    device.error_1q[0] = 1.5;
    EXPECT_THROW(device.validate(), UsageError);

    device = dev::make_device("ibm_lagos");
    device.error_2q[0] = -0.1;
    EXPECT_THROW(device.validate(), UsageError);

    device = dev::make_device("ibm_lagos");
    device.t1_us[0] = 0.0;
    EXPECT_THROW(device.validate(), UsageError);

    device = dev::make_device("ibm_lagos");
    device.t2_us[0] = kNaN;
    EXPECT_THROW(device.validate(), UsageError);

    device = dev::make_device("ibm_lagos");
    device.duration_2q_ns = -1.0;
    EXPECT_THROW(device.validate(), UsageError);
}

// ---------------------------------------------------------------------
// Plain executors
// ---------------------------------------------------------------------

TEST(Executors, DensityComputesFidelityInBounds)
{
    const dev::Device device = dev::make_device("ibm_lagos");
    DensityExecutor executor(device);
    Rng rng(3);
    const circ::Circuit c = clifford_circuit();
    ASSERT_TRUE(executor.supports(c));
    const double f = executor.replica_fidelity(c, rng);
    EXPECT_GT(f, 0.0);
    EXPECT_LE(f, 1.0);
    EXPECT_EQ(executor.executions(), 1u);
}

TEST(Executors, StabilizerSupportsOnlyClifford)
{
    const dev::Device device = dev::make_device("ibm_lagos");
    StabilizerExecutor executor(device, 512);
    EXPECT_TRUE(executor.supports(clifford_circuit()));
    EXPECT_FALSE(executor.supports(variational_circuit()));
}

TEST(Executors, NoiselessFidelityIsOne)
{
    NoiselessExecutor executor;
    Rng rng(5);
    EXPECT_DOUBLE_EQ(executor.replica_fidelity(clifford_circuit(), rng),
                     1.0);
}

TEST(Executors, NoisyExecutorsRejectCorruptDevice)
{
    dev::Device device = dev::make_device("ibm_lagos");
    device.readout_error[0] = 2.0;
    EXPECT_THROW(StabilizerExecutor(device, 512), UsageError);
}

// ---------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------

TEST(FaultInjector, TransientRateOneAlwaysThrows)
{
    const dev::Device device = dev::make_device("ibm_lagos");
    FaultConfig faults;
    faults.transient_rate = 1.0;
    FaultInjector injector(std::make_unique<NoiselessExecutor>(), faults);
    Rng rng(1);
    const circ::Circuit c = clifford_circuit();
    for (int i = 0; i < 5; ++i)
        EXPECT_THROW(injector.replica_fidelity(c, rng), BackendError);
    EXPECT_EQ(injector.injected().transient, 5u);
    EXPECT_EQ(injector.executions(), 0u);
}

TEST(FaultInjector, TimeoutCarriesQueueWait)
{
    FaultConfig faults;
    faults.timeout_rate = 1.0;
    faults.queue_wait_ms = 1234.0;
    FaultInjector injector(std::make_unique<NoiselessExecutor>(), faults);
    Rng rng(1);
    try {
        injector.replica_fidelity(clifford_circuit(), rng);
        FAIL() << "expected QueueTimeout";
    } catch (const QueueTimeout &e) {
        EXPECT_DOUBLE_EQ(e.waited_ms(), 1234.0);
    }
    EXPECT_EQ(injector.injected().timeouts, 1u);
}

TEST(FaultInjector, GarbagePoisonsFidelity)
{
    FaultConfig faults;
    faults.garbage_rate = 1.0;
    FaultInjector injector(std::make_unique<NoiselessExecutor>(), faults);
    Rng rng(1);
    EXPECT_TRUE(std::isnan(
        injector.replica_fidelity(clifford_circuit(), rng)));
    EXPECT_EQ(injector.injected().garbage, 1u);
}

TEST(FaultInjector, CrashFiresAfterNExecutions)
{
    FaultConfig faults;
    faults.crash_after = 3;
    FaultInjector injector(std::make_unique<NoiselessExecutor>(), faults);
    Rng rng(1);
    const circ::Circuit c = clifford_circuit();
    for (int i = 0; i < 3; ++i)
        EXPECT_NO_THROW(injector.replica_fidelity(c, rng));
    EXPECT_THROW(injector.replica_fidelity(c, rng), CrashError);
    EXPECT_EQ(injector.injected().crashes, 1u);
}

TEST(FaultInjector, DriftPerturbsOnlyTheTargetSnapshot)
{
    const dev::Device original = dev::make_device("ibm_lagos");
    dev::Device snapshot = original;
    FaultConfig faults;
    faults.drift_rate = 1.0;
    FaultInjector injector(std::make_unique<NoiselessExecutor>(), faults,
                           &snapshot);
    Rng rng(1);
    injector.replica_fidelity(clifford_circuit(), rng);
    EXPECT_EQ(injector.injected().drifts, 1u);
    EXPECT_NE(snapshot.readout_error, original.readout_error);
    // The drifted snapshot must still be a valid calibration.
    EXPECT_NO_THROW(snapshot.validate());
}

TEST(FaultInjector, SeededStreamIsDeterministic)
{
    FaultConfig faults;
    faults.transient_rate = 0.3;
    faults.garbage_rate = 0.2;
    faults.seed = 99;
    const circ::Circuit c = clifford_circuit();

    auto run = [&]() {
        FaultInjector injector(std::make_unique<NoiselessExecutor>(),
                               faults);
        Rng rng(1);
        std::vector<int> outcomes;
        for (int i = 0; i < 50; ++i) {
            try {
                const double f = injector.replica_fidelity(c, rng);
                outcomes.push_back(std::isnan(f) ? 2 : 0);
            } catch (const BackendError &) {
                outcomes.push_back(1);
            }
        }
        return outcomes;
    };
    EXPECT_EQ(run(), run());
}

TEST(FaultInjector, RespectsBackendTarget)
{
    FaultConfig faults;
    faults.transient_rate = 1.0;
    faults.target = FaultTarget::Density;
    // Wrapping a noiseless executor: config targets density only, so the
    // injector is a pass-through.
    FaultInjector injector(std::make_unique<NoiselessExecutor>(), faults);
    Rng rng(1);
    EXPECT_NO_THROW(injector.replica_fidelity(clifford_circuit(), rng));
    EXPECT_EQ(injector.injected().total(), 0u);
}

TEST(FaultInjector, RejectsBadRates)
{
    FaultConfig faults;
    faults.transient_rate = 1.5;
    EXPECT_THROW(
        FaultInjector(std::make_unique<NoiselessExecutor>(), faults),
        UsageError);
}

// ---------------------------------------------------------------------
// ResilientExecutor
// ---------------------------------------------------------------------

TEST(ResilientExecutor, FaultFreeCallIsNotDegraded)
{
    const dev::Device device = dev::make_device("ibm_lagos");
    ResilientExecutor executor(device, BackendKind::Density, 512, 1.0);
    Rng rng(2);
    const double f = executor.replica_fidelity(clifford_circuit(), rng);
    EXPECT_GT(f, 0.0);
    EXPECT_LE(f, 1.0);
    ASSERT_NE(executor.last_report(), nullptr);
    EXPECT_FALSE(executor.last_report()->degraded);
    EXPECT_EQ(executor.last_report()->rung, 0);
    EXPECT_EQ(executor.counters().calls, 1u);
    EXPECT_EQ(executor.counters().attempts, 1u);
    EXPECT_EQ(executor.counters().failures, 0u);
}

TEST(ResilientExecutor, RetriedCallMatchesFaultFreeValue)
{
    // The stabilizer backend consumes the computation RNG; retries must
    // replay the same draws so surviving a fault changes nothing.
    const dev::Device device = dev::make_device("ibm_lagos");
    const circ::Circuit c = clifford_circuit();

    ResilientExecutor clean(device, BackendKind::Stabilizer, 512, 1.0);
    Rng clean_rng(77);
    const double clean_f = clean.replica_fidelity(c, clean_rng);

    FaultConfig faults;
    faults.transient_rate = 0.4;
    RetryPolicy policy;
    policy.max_attempts = 20; // never exhaust the rung in this test
    ResilientExecutor faulty(device, BackendKind::Stabilizer, 512, 1.0,
                             policy, faults);
    Rng faulty_rng(77);
    const double faulty_f = faulty.replica_fidelity(c, faulty_rng);

    EXPECT_DOUBLE_EQ(clean_f, faulty_f);
    // And the computation stream advanced identically.
    EXPECT_DOUBLE_EQ(clean.replica_fidelity(c, clean_rng),
                     faulty.replica_fidelity(c, faulty_rng));
}

TEST(ResilientExecutor, AlwaysFailingPrimaryDegradesExactly)
{
    const dev::Device device = dev::make_device("ibm_lagos");
    FaultConfig faults;
    faults.transient_rate = 1.0;
    faults.target = FaultTarget::Density;
    RetryPolicy policy;
    policy.max_attempts = 3;
    ResilientExecutor executor(device, BackendKind::Density, 512, 1.0,
                               policy, faults);
    Rng rng(4);
    const circ::Circuit c = clifford_circuit();

    const int calls = 5;
    for (int i = 0; i < calls; ++i) {
        const double f = executor.replica_fidelity(c, rng);
        EXPECT_TRUE(std::isfinite(f));
        ASSERT_NE(executor.last_report(), nullptr);
        EXPECT_TRUE(executor.last_report()->degraded);
        EXPECT_EQ(executor.last_report()->backend,
                  BackendKind::Stabilizer);
    }
    const RetryCounters &counters = executor.counters();
    EXPECT_EQ(counters.calls, 5u);
    // 3 failed density attempts + 1 stabilizer success per call.
    EXPECT_EQ(counters.attempts, 20u);
    EXPECT_EQ(counters.failures, 15u);
    EXPECT_EQ(counters.retries, 10u);
    EXPECT_EQ(counters.rungs_exhausted, 5u);
    EXPECT_EQ(counters.degraded_calls, 5u);
    EXPECT_EQ(executor.injected().transient, 15u);
    EXPECT_GT(counters.backoff_wait_ms, 0.0);
    EXPECT_DOUBLE_EQ(executor.elapsed_ms(), counters.backoff_wait_ms);
}

TEST(ResilientExecutor, GarbageResultsAreRetriedAsInvalid)
{
    const dev::Device device = dev::make_device("ibm_lagos");
    FaultConfig faults;
    faults.garbage_rate = 1.0;
    faults.target = FaultTarget::Density;
    RetryPolicy policy;
    policy.max_attempts = 2;
    ResilientExecutor executor(device, BackendKind::Density, 512, 1.0,
                               policy, faults);
    Rng rng(6);
    const double f = executor.replica_fidelity(clifford_circuit(), rng);
    EXPECT_TRUE(std::isfinite(f));
    EXPECT_EQ(executor.counters().invalid_results, 2u);
    EXPECT_TRUE(executor.last_report()->degraded);
}

TEST(ResilientExecutor, AllRungsFailingThrowsBackendError)
{
    const dev::Device device = dev::make_device("ibm_lagos");
    FaultConfig faults;
    faults.transient_rate = 1.0; // every rung
    RetryPolicy policy;
    policy.max_attempts = 2;
    ResilientExecutor executor(device, BackendKind::Density, 512, 1.0,
                               policy, faults);
    Rng rng(8);
    EXPECT_THROW(executor.replica_fidelity(clifford_circuit(), rng),
                 BackendError);
    EXPECT_EQ(executor.counters().rungs_exhausted, 3u);
}

TEST(ResilientExecutor, QueueTimeoutsBurnTheCallDeadline)
{
    const dev::Device device = dev::make_device("ibm_lagos");
    FaultConfig faults;
    faults.timeout_rate = 1.0;
    faults.queue_wait_ms = 30000.0;
    faults.target = FaultTarget::Density;
    RetryPolicy policy;
    policy.max_attempts = 10;
    policy.call_deadline_ms = 50000.0; // hit after two timeouts
    ResilientExecutor executor(device, BackendKind::Density, 512, 1.0,
                               policy, faults);
    Rng rng(9);
    const double f = executor.replica_fidelity(clifford_circuit(), rng);
    EXPECT_TRUE(std::isfinite(f));
    EXPECT_TRUE(executor.last_report()->degraded);
    // Two 30 s queue waits exceeded the 50 s deadline; the rung was
    // abandoned without spending all 10 attempts.
    EXPECT_EQ(executor.injected().timeouts, 2u);
    EXPECT_DOUBLE_EQ(executor.counters().queue_wait_ms, 60000.0);
}

TEST(ResilientExecutor, SpentBudgetSkipsRetries)
{
    const dev::Device device = dev::make_device("ibm_lagos");
    FaultConfig faults;
    faults.transient_rate = 1.0;
    faults.target = FaultTarget::Density;
    RetryPolicy policy;
    policy.max_attempts = 4;
    policy.total_budget_ms = 150.0;
    ResilientExecutor executor(device, BackendKind::Density, 512, 1.0,
                               policy, faults);
    Rng rng(10);
    const circ::Circuit c = clifford_circuit();

    // First call retries normally and pushes the clock past the budget.
    executor.replica_fidelity(c, rng);
    const std::uint64_t attempts_after_first =
        executor.counters().attempts;
    EXPECT_GT(executor.elapsed_ms(), policy.total_budget_ms);

    // Later calls degrade after a single density attempt.
    executor.replica_fidelity(c, rng);
    EXPECT_EQ(executor.counters().attempts, attempts_after_first + 2);
}

TEST(ResilientExecutor, UnsupportedPrimaryIsSkippedNotDegraded)
{
    // A variational circuit cannot run on the stabilizer rung; with
    // Stabilizer as primary the noiseless rung services it, but that is
    // a capability skip, not a degradation event.
    const dev::Device device = dev::make_device("ibm_lagos");
    ResilientExecutor executor(device, BackendKind::Stabilizer, 512, 1.0);
    Rng rng(11);
    const circ::Circuit c = variational_circuit();
    ASSERT_TRUE(executor.supports(c));
    executor.replica_fidelity(c, rng);
    EXPECT_FALSE(executor.last_report()->degraded);
    EXPECT_EQ(executor.last_report()->backend, BackendKind::Noiseless);
    EXPECT_EQ(executor.counters().degraded_calls, 0u);
}

TEST(ResilientExecutor, DistributionPathValidatesAndRetries)
{
    const dev::Device device = dev::make_device("ibm_lagos");
    FaultConfig faults;
    faults.garbage_rate = 0.5;
    faults.seed = 21;
    RetryPolicy policy;
    policy.max_attempts = 8;
    ResilientExecutor executor(device, BackendKind::Density, 512, 1.0,
                               policy, faults);
    Rng rng(12);
    const circ::Circuit c = variational_circuit();
    const std::vector<double> params(
        static_cast<std::size_t>(c.num_params()), 0.3);
    for (int i = 0; i < 10; ++i) {
        auto probs = executor.run_distribution(c, params, {}, rng);
        EXPECT_TRUE(is_valid_distribution(probs, 1e-9));
    }
}

// ---------------------------------------------------------------------
// DistributionFn decorators
// ---------------------------------------------------------------------

TEST(ResilientDistribution, RetriesFlakyProviderToTheSameValues)
{
    int failures_left = 3;
    qml::DistributionFn flaky =
        [&](const circ::Circuit &, const std::vector<double> &,
            const std::vector<double> &) -> std::vector<double> {
        if (failures_left > 0) {
            --failures_left;
            throw BackendError("flaky");
        }
        return {0.5, 0.5};
    };
    auto counters = std::make_shared<RetryCounters>();
    RetryPolicy policy;
    policy.max_attempts = 5;
    auto provider =
        resilient_distribution(flaky, policy, 1234, counters);
    const circ::Circuit c = clifford_circuit();
    const auto probs = provider(c, {}, {});
    EXPECT_EQ(probs, (std::vector<double>{0.5, 0.5}));
    EXPECT_EQ(counters->calls, 1u);
    EXPECT_EQ(counters->failures, 3u);
    EXPECT_EQ(counters->retries, 3u);
}

TEST(ResilientDistribution, ExhaustedAttemptsThrow)
{
    qml::DistributionFn broken =
        [](const circ::Circuit &, const std::vector<double> &,
           const std::vector<double> &) -> std::vector<double> {
        throw BackendError("down");
    };
    RetryPolicy policy;
    policy.max_attempts = 3;
    auto provider = resilient_distribution(broken, policy, 5);
    EXPECT_THROW(provider(clifford_circuit(), {}, {}), BackendError);
}

TEST(FaultyDistribution, InjectedGarbageIsCaughtByResilientWrapper)
{
    qml::DistributionFn exact =
        [](const circ::Circuit &, const std::vector<double> &,
           const std::vector<double> &) -> std::vector<double> {
        return {0.25, 0.75};
    };
    FaultConfig faults;
    faults.transient_rate = 0.2;
    faults.garbage_rate = 0.2;
    faults.seed = 31;
    RetryPolicy policy;
    policy.max_attempts = 16;
    auto provider = resilient_distribution(
        faulty_distribution(exact, faults), policy, 6);
    const circ::Circuit c = clifford_circuit();
    for (int i = 0; i < 30; ++i) {
        const auto probs = provider(c, {}, {});
        EXPECT_NEAR(probs[0], 0.25, 1e-12);
        EXPECT_NEAR(probs[1], 0.75, 1e-12);
    }
}

// ---------------------------------------------------------------------
// Single-line circuit serialization (journal format)
// ---------------------------------------------------------------------

TEST(SerializeLine, RoundTripsGeneratedCandidates)
{
    const dev::Device device = dev::make_device("ibm_guadalupe");
    core::CandidateConfig config;
    config.num_qubits = 4;
    config.num_params = 12;
    config.num_embeds = 4;
    config.num_meas = 2;
    config.num_features = 4;
    Rng rng(17);
    for (int trial = 0; trial < 10; ++trial) {
        const circ::Circuit c =
            core::generate_candidate(device, config, rng);
        const std::string line = circ::to_text_line(c);
        EXPECT_EQ(line.find('\n'), std::string::npos);
        const circ::Circuit back = circ::from_text_line(line);
        EXPECT_EQ(circ::to_text(back), circ::to_text(c));
    }
}

TEST(SerializeLine, RejectsCorruptEscapes)
{
    EXPECT_THROW(circ::from_text_line("elv-circuit 1\\"), UsageError);
    EXPECT_THROW(circ::from_text_line("elv-circuit 1\\x"), UsageError);
}

} // namespace
