/**
 * @file
 * Core (Elivagar) tests: Algorithm 1 candidate generation invariants,
 * CNR behaviour (bounds, monotonicity in noise and depth, correlation
 * with true circuit fidelity — the Fig. 5 claim), RepCap behaviour
 * (bounds, sensitivity to data embedding, preference for separating
 * circuits — the Fig. 6/7 claim), and the 5-step search pipeline.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "compiler/compile.hpp"
#include "core/candidate_gen.hpp"
#include "core/cnr.hpp"
#include "core/repcap.hpp"
#include "core/search.hpp"
#include "noise/noise_model.hpp"
#include "qml/synthetic.hpp"
#include "qml/trainer.hpp"

namespace {

using namespace elv;
using namespace elv::circ;
using namespace elv::core;

CandidateConfig
small_config()
{
    CandidateConfig config;
    config.num_qubits = 4;
    config.num_params = 12;
    config.num_embeds = 4;
    config.num_meas = 2;
    config.num_features = 4;
    return config;
}

TEST(CandidateGen, ProducesHardwareNativeCircuits)
{
    Rng rng(1);
    const dev::Device device = dev::make_device("ibm_guadalupe");
    const CandidateConfig config = small_config();
    for (int trial = 0; trial < 20; ++trial) {
        const Circuit c = generate_candidate(device, config, rng);
        EXPECT_TRUE(comp::is_hardware_native(c, device.topology));
        EXPECT_EQ(c.num_params(), config.num_params);
        EXPECT_EQ(c.num_embedding_gates(), config.num_embeds);
        EXPECT_EQ(static_cast<int>(c.measured().size()),
                  config.num_meas);
        EXPECT_EQ(static_cast<int>(c.touched_qubits().size()),
                  config.num_qubits);
    }
}

TEST(CandidateGen, EmbeddingCoversAllFeaturesWhenBudgetAllows)
{
    Rng rng(2);
    const dev::Device device = dev::make_device("ibmq_jakarta");
    CandidateConfig config = small_config();
    config.num_embeds = 8; // two full feature cycles
    for (int trial = 0; trial < 10; ++trial) {
        const Circuit c = generate_candidate(device, config, rng);
        std::set<int> features;
        for (const Op &op : c.ops())
            if (op.role == ParamRole::Embedding)
                features.insert(op.data_index);
        EXPECT_EQ(features.size(), 4u);
    }
}

TEST(CandidateGen, FixedEmbeddingModesEmitPrefixes)
{
    Rng rng(3);
    const dev::Device device = dev::make_device("ibm_guadalupe");
    CandidateConfig config = small_config();

    config.embedding = EmbeddingMode::FixedAngle;
    const Circuit angle = generate_candidate(device, config, rng);
    EXPECT_EQ(angle.num_embedding_gates(), config.num_features);
    EXPECT_TRUE(comp::is_hardware_native(angle, device.topology));

    config.embedding = EmbeddingMode::FixedIQP;
    const Circuit iqp = generate_candidate(device, config, rng);
    EXPECT_TRUE(comp::is_hardware_native(iqp, device.topology));
    EXPECT_GT(iqp.count_kind(GateKind::H), 0);
    bool has_product = false;
    for (const Op &op : iqp.ops())
        if (op.role == ParamRole::Embedding && op.data_index2 >= 0)
            has_product = true;
    EXPECT_TRUE(has_product);
}

TEST(CandidateGen, NoiseAwareAvoidsBadReadoutQubits)
{
    // On OQC Lucy (13% median readout error with spread), noise-aware
    // measurement selection should pick the worst-readout qubit less
    // often than uniform selection does.
    const dev::Device device = dev::make_device("oqc_lucy");
    int worst = 0;
    for (int q = 1; q < device.num_qubits(); ++q)
        if (device.readout_error[static_cast<std::size_t>(q)] >
            device.readout_error[static_cast<std::size_t>(worst)])
            worst = q;

    CandidateConfig config = small_config();
    config.num_qubits = device.num_qubits(); // subgraph = whole ring
    config.num_meas = 1;

    int aware_hits = 0, unaware_hits = 0;
    Rng rng_a(4), rng_u(4);
    for (int trial = 0; trial < 300; ++trial) {
        config.noise_aware = true;
        if (generate_candidate(device, config, rng_a).measured()[0] ==
            worst)
            ++aware_hits;
        config.noise_aware = false;
        if (generate_candidate(device, config, rng_u).measured()[0] ==
            worst)
            ++unaware_hits;
    }
    EXPECT_LT(aware_hits, unaware_hits);
}

TEST(CandidateGen, DeviceUnawareNeedsRouting)
{
    Rng rng(5);
    CandidateConfig config = small_config();
    config.num_qubits = 5;
    const dev::Device device = dev::make_device("ibmq_manila");
    int native = 0;
    for (int trial = 0; trial < 20; ++trial) {
        const Circuit c = generate_device_unaware(config, rng);
        EXPECT_EQ(c.num_params(), config.num_params);
        if (comp::is_hardware_native(c, device.topology))
            ++native;
    }
    // All-to-all random circuits almost never fit a line topology.
    EXPECT_LT(native, 5);
}

TEST(Cnr, BoundsAndZeroNoise)
{
    Rng rng(6);
    const dev::Device device = dev::make_device("ibm_lagos");
    const Circuit c =
        generate_candidate(device, small_config(), rng);

    CnrOptions options;
    options.num_replicas = 8;
    options.noise_scale = 0.0;
    const CnrResult ideal =
        clifford_noise_resilience(c, device, rng, options);
    EXPECT_NEAR(ideal.cnr, 1.0, 1e-9);
    EXPECT_EQ(ideal.circuit_executions, 8u);

    options.noise_scale = 1.0;
    const CnrResult noisy =
        clifford_noise_resilience(c, device, rng, options);
    EXPECT_GT(noisy.cnr, 0.0);
    EXPECT_LT(noisy.cnr, 1.0);
}

TEST(Cnr, DecreasesWithNoiseScale)
{
    Rng rng(7);
    const dev::Device device = dev::make_device("ibm_perth");
    const Circuit c =
        generate_candidate(device, small_config(), rng);
    CnrOptions options;
    options.num_replicas = 12;
    double prev = 1.1;
    for (double scale : {0.5, 2.0, 6.0}) {
        options.noise_scale = scale;
        Rng local(77);
        const double cnr =
            clifford_noise_resilience(c, device, local, options).cnr;
        EXPECT_LT(cnr, prev);
        prev = cnr;
    }
}

TEST(Cnr, PredictsCircuitFidelity)
{
    // The Fig. 5 claim: CNR correlates strongly with the fidelity of
    // the original (non-Clifford) circuit under bound parameters.
    const dev::Device device = dev::make_device("oqc_lucy");
    const noise::NoisyDensitySimulator noisy(device);
    Rng rng(8);

    std::vector<double> cnrs, fidelities;
    CandidateConfig config = small_config();
    for (int n = 0; n < 40; ++n) {
        // Vary circuit size so fidelities spread out.
        config.num_params = 4 + 3 * (n % 10);
        const Circuit c = generate_candidate(device, config, rng);
        CnrOptions options;
        options.num_replicas = 16;
        cnrs.push_back(
            clifford_noise_resilience(c, device, rng, options).cnr);

        // Circuit fidelity averaged over parameter/input bindings (the
        // quantity CNR predicts over the course of training, Sec. 5.1).
        double fid = 0.0;
        const int bindings = 8;
        for (int b = 0; b < bindings; ++b) {
            std::vector<double> params(
                static_cast<std::size_t>(c.num_params()));
            for (auto &p : params)
                p = rng.uniform(-M_PI, M_PI);
            std::vector<double> x(
                static_cast<std::size_t>(config.num_features));
            for (auto &v : x)
                v = rng.uniform(-M_PI / 2, M_PI / 2);
            fid += noisy.fidelity(c, params, x);
        }
        fidelities.push_back(fid / bindings);
    }
    EXPECT_GT(pearson_r(cnrs, fidelities), 0.55);
}

TEST(Cnr, StabilizerBackendAgreesWithDensity)
{
    Rng rng(9);
    const dev::Device device = dev::make_device("ibm_nairobi");
    const Circuit c =
        generate_candidate(device, small_config(), rng);

    CnrOptions dense;
    dense.num_replicas = 16;
    Rng r1(42);
    const double cnr_dense =
        clifford_noise_resilience(c, device, r1, dense).cnr;

    CnrOptions stab = dense;
    stab.backend = CnrBackend::Stabilizer;
    stab.shots = 4096;
    Rng r2(42);
    const double cnr_stab =
        clifford_noise_resilience(c, device, r2, stab).cnr;

    // Different replicas and sampling noise: loose agreement.
    EXPECT_NEAR(cnr_dense, cnr_stab, 0.12);
}

TEST(RepCap, BoundsAndDeterminism)
{
    const qml::Benchmark bench = qml::make_benchmark("moons", 1, 0.2);
    Rng rng(10);
    const dev::Device device = dev::make_device("ibmq_jakarta");
    CandidateConfig config = small_config();
    config.num_features = bench.spec.dim;
    const Circuit c = generate_candidate(device, config, rng);

    RepCapOptions options;
    options.samples_per_class = 6;
    options.param_inits = 4;
    Rng r1(5), r2(5);
    const RepCapResult a =
        representational_capacity(c, bench.train, r1, options);
    const RepCapResult b =
        representational_capacity(c, bench.train, r2, options);
    EXPECT_DOUBLE_EQ(a.repcap, b.repcap);
    EXPECT_GE(a.repcap, 0.0);
    EXPECT_LE(a.repcap, 1.0);
    EXPECT_EQ(a.circuit_executions,
              static_cast<std::uint64_t>(2 * 6 * 4));
}

TEST(RepCap, EmbeddingCircuitsBeatConstantCircuits)
{
    // A circuit that never touches the data maps every sample to the
    // same state: all pairwise similarities are 1, so inter-class
    // separation is zero and RepCap must be lower than for a circuit
    // that actually embeds the data.
    const qml::Benchmark bench = qml::make_benchmark("moons", 2, 0.2);
    Rng rng(11);

    Circuit constant(4);
    for (int i = 0; i < 6; ++i)
        constant.add_variational(GateKind::RY, {i % 4});
    constant.add_gate(GateKind::CX, {0, 1});
    constant.set_measured({0, 1});

    Circuit embedding(4);
    embedding.add_embedding(GateKind::RX, {0}, 0);
    embedding.add_embedding(GateKind::RY, {1}, 1);
    embedding.add_gate(GateKind::CX, {0, 1});
    for (int i = 0; i < 4; ++i)
        embedding.add_variational(GateKind::RY, {i % 2});
    embedding.set_measured({0, 1});

    RepCapOptions options;
    options.samples_per_class = 8;
    options.param_inits = 6;
    Rng r1(3), r2(3);
    const double rc_const =
        representational_capacity(constant, bench.train, r1, options)
            .repcap;
    const double rc_embed =
        representational_capacity(embedding, bench.train, r2, options)
            .repcap;
    EXPECT_GT(rc_embed, rc_const);
}

TEST(RepCap, PredictsTrainedPerformance)
{
    // The Fig. 6/7 claim, at test scale: across random candidates,
    // RepCap correlates positively with trained test accuracy.
    const qml::Benchmark bench = qml::make_benchmark("moons", 3, 0.15);
    const dev::Device device = dev::make_device("ibmq_jakarta");
    Rng rng(12);

    CandidateConfig config = small_config();
    config.num_features = bench.spec.dim;
    config.num_embeds = 4;
    config.num_params = 12;
    config.num_meas = 1;

    std::vector<double> repcaps, accuracies;
    for (int n = 0; n < 16; ++n) {
        const Circuit c = generate_candidate(device, config, rng);
        RepCapOptions options;
        options.samples_per_class = 12;
        options.param_inits = 12;
        Rng rc_rng(100 + n);
        repcaps.push_back(
            representational_capacity(c, bench.train, rc_rng, options)
                .repcap);

        // Best of two optimizer restarts, so initialization variance
        // does not swamp the circuit-quality signal.
        double best = 0.0;
        for (std::uint64_t s = 1; s <= 2; ++s) {
            qml::TrainConfig tc;
            tc.epochs = 40;
            tc.seed = s;
            const auto trained = qml::train_circuit(c, bench.train, tc);
            best = std::max(
                best,
                qml::evaluate(c, trained.params, bench.test).accuracy);
        }
        accuracies.push_back(best);
    }
    EXPECT_GT(spearman_r(repcaps, accuracies), 0.4);
}

TEST(Search, EndToEndPipeline)
{
    const qml::Benchmark bench = qml::make_benchmark("moons", 4, 0.15);
    const dev::Device device = dev::make_device("ibm_lagos");

    ElivagarConfig config;
    config.num_candidates = 24;
    config.candidate = small_config();
    config.candidate.num_params = 16;
    config.candidate.num_embeds = 6;
    config.candidate.num_meas = 1;
    config.candidate.num_features = bench.spec.dim;
    config.cnr.num_replicas = 6;
    config.repcap.samples_per_class = 8;
    config.repcap.param_inits = 8;
    config.seed = 13;

    const SearchResult result =
        elivagar_search(device, bench.train, config);
    EXPECT_TRUE(
        comp::is_hardware_native(result.best_circuit, device.topology));
    EXPECT_EQ(result.candidates.size(), 24u);
    EXPECT_GE(result.survivors, 1);
    EXPECT_LE(result.survivors, 12); // top 50%
    EXPECT_EQ(result.cnr_executions, 24u * 6u);
    // RepCap executions only for survivors.
    EXPECT_EQ(result.repcap_executions,
              static_cast<std::uint64_t>(result.survivors) * 2 * 8 * 8);
    EXPECT_GT(result.best_score, 0.0);

    // The chosen circuit must be trainable to a reasonable accuracy
    // (best of two optimizer restarts, as initializations vary).
    double best_acc = 0.0;
    for (std::uint64_t s = 1; s <= 2; ++s) {
        qml::TrainConfig tc;
        tc.epochs = 40;
        tc.seed = s;
        const auto trained =
            qml::train_circuit(result.best_circuit, bench.train, tc);
        best_acc = std::max(
            best_acc,
            qml::evaluate(result.best_circuit, trained.params,
                          bench.test)
                .accuracy);
    }
    EXPECT_GT(best_acc, 0.6);
}

TEST(Search, CnrDisabledEvaluatesEveryone)
{
    const qml::Benchmark bench = qml::make_benchmark("moons", 5, 0.1);
    const dev::Device device = dev::make_device("ibm_lagos");

    ElivagarConfig config;
    config.num_candidates = 8;
    config.candidate = small_config();
    config.candidate.num_features = bench.spec.dim;
    config.use_cnr = false;
    config.repcap.samples_per_class = 4;
    config.repcap.param_inits = 3;
    config.seed = 14;

    const SearchResult result =
        elivagar_search(device, bench.train, config);
    EXPECT_EQ(result.survivors, 8);
    EXPECT_EQ(result.cnr_executions, 0u);
    for (const auto &record : result.candidates)
        EXPECT_FALSE(record.rejected_by_cnr);
}

TEST(Search, HigherThresholdRejectsMore)
{
    const qml::Benchmark bench = qml::make_benchmark("moons", 6, 0.1);
    // A very noisy device so CNR values spread below 1.
    const dev::Device device = dev::make_device("rigetti_aspen_m3");

    ElivagarConfig config;
    config.num_candidates = 10;
    config.candidate = small_config();
    config.candidate.num_features = bench.spec.dim;
    config.cnr.num_replicas = 4;
    config.repcap.samples_per_class = 4;
    config.repcap.param_inits = 2;
    config.seed = 15;

    config.cnr_threshold = 0.0;
    config.keep_fraction = 1.0;
    const SearchResult lax = elivagar_search(device, bench.train, config);
    config.cnr_threshold = 0.9;
    config.keep_fraction = 0.5;
    const SearchResult strict =
        elivagar_search(device, bench.train, config);
    EXPECT_LT(strict.survivors, lax.survivors);
    EXPECT_LT(strict.repcap_executions, lax.repcap_executions);
}

} // namespace
