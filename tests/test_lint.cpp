/**
 * @file
 * Tests for elvlint: an adversarial corpus (one malformed artifact per
 * rule, asserting exactly the expected rule fires), clean-pass
 * assertions over every builder template, baseline generator, and
 * generated candidate, the fused-program and device passes, and the
 * pipeline pre-flight boundaries (fatal and counting modes).
 */
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <string>

#include "baselines/simple.hpp"
#include "circuit/builders.hpp"
#include "circuit/circuit.hpp"
#include "circuit/clifford_replica.hpp"
#include "common/logging.hpp"
#include "compiler/compile.hpp"
#include "core/candidate_gen.hpp"
#include "device/device.hpp"
#include "lint/lint.hpp"
#include "lint/preflight.hpp"
#include "obs/metrics.hpp"
#include "sim/fusion.hpp"

namespace {

using namespace elv;
using circ::Circuit;
using circ::GateKind;
using circ::Op;
using circ::ParamRole;
using lint::CircuitView;
using lint::LintOptions;
using lint::Report;
using lint::Severity;

/** Rules an error-free report may still mention (warning severity). */
void
expect_no_errors(const Report &report, const std::string &context)
{
    EXPECT_FALSE(report.has_errors())
        << context << ":\n"
        << report.to_string();
}

/** Assert `rule` fired with Error severity and no other rule errored. */
void
expect_only_error(const Report &report, const std::string &rule)
{
    EXPECT_TRUE(report.fired(rule)) << report.to_string();
    for (const auto &d : report.diagnostics) {
        if (d.severity == Severity::Error) {
            EXPECT_EQ(d.rule, rule) << report.to_string();
        }
    }
}

// ---------------------------------------------------------------------
// Adversarial corpus: raw CircuitViews express IR the builder API
// refuses to construct; each case must trip exactly its rule.
// ---------------------------------------------------------------------

TEST(LintAdversarial, QubitBoundsOutOfRange)
{
    std::vector<Op> ops(1);
    ops[0].kind = GateKind::H;
    ops[0].qubits = {5, -1};
    const std::vector<int> measured = {0};
    const Report report =
        lint::lint_circuit(CircuitView{2, 0, ops, measured});
    expect_only_error(report, "qubit-bounds");
    EXPECT_EQ(report.diagnostics[0].op_index, 0);
}

TEST(LintAdversarial, QubitBoundsIdenticalOperands)
{
    std::vector<Op> ops(1);
    ops[0].kind = GateKind::CX;
    ops[0].qubits = {1, 1};
    const std::vector<int> measured = {0};
    expect_only_error(lint::lint_circuit(CircuitView{2, 0, ops, measured}),
                      "qubit-bounds");
}

TEST(LintAdversarial, QubitBoundsStraySecondOperand)
{
    std::vector<Op> ops(1);
    ops[0].kind = GateKind::H;
    ops[0].qubits = {0, 1}; // arity-1 gate with a second operand
    const std::vector<int> measured = {0};
    expect_only_error(lint::lint_circuit(CircuitView{2, 0, ops, measured}),
                      "qubit-bounds");
}

TEST(LintAdversarial, ParamBindingDanglingSymbol)
{
    // A parametric RX with no binding silently resolves to angle 0.
    std::vector<Op> ops(1);
    ops[0].kind = GateKind::RX;
    ops[0].qubits = {0, -1};
    ops[0].role = ParamRole::None;
    const std::vector<int> measured = {0};
    expect_only_error(lint::lint_circuit(CircuitView{1, 0, ops, measured}),
                      "param-binding");
}

TEST(LintAdversarial, ParamBindingDoubleBoundSlot)
{
    std::vector<Op> ops(2);
    for (auto &op : ops) {
        op.kind = GateKind::RY;
        op.qubits = {0, -1};
        op.role = ParamRole::Variational;
        op.param_index = 0; // both gates claim slot 0
    }
    const std::vector<int> measured = {0};
    expect_only_error(lint::lint_circuit(CircuitView{1, 1, ops, measured}),
                      "param-binding");
}

TEST(LintAdversarial, ParamBindingSlotBeyondDeclaredCount)
{
    std::vector<Op> ops(1);
    ops[0].kind = GateKind::RZ;
    ops[0].qubits = {0, -1};
    ops[0].role = ParamRole::Variational;
    ops[0].param_index = 7;
    const std::vector<int> measured = {0};
    expect_only_error(lint::lint_circuit(CircuitView{1, 1, ops, measured}),
                      "param-binding");
}

TEST(LintAdversarial, ParamBindingEmbeddingWithoutFeature)
{
    std::vector<Op> ops(1);
    ops[0].kind = GateKind::RX;
    ops[0].qubits = {0, -1};
    ops[0].role = ParamRole::Embedding;
    ops[0].data_index = -1; // no feature bound
    const std::vector<int> measured = {0};
    expect_only_error(lint::lint_circuit(CircuitView{1, 0, ops, measured}),
                      "param-binding");
}

TEST(LintAdversarial, EmbeddingOrderAmpEmbedNotFirst)
{
    std::vector<Op> ops(2);
    ops[0].kind = GateKind::H;
    ops[0].qubits = {0, -1};
    ops[1].kind = GateKind::AmpEmbed;
    ops[1].role = ParamRole::Embedding;
    ops[1].data_index = 0;
    const std::vector<int> measured = {0};
    const Report report =
        lint::lint_circuit(CircuitView{2, 0, ops, measured});
    expect_only_error(report, "embedding-order");
    EXPECT_EQ(report.diagnostics[0].op_index, 1);
}

TEST(LintAdversarial, EmbeddingOrderMixedWithGateEmbeddings)
{
    std::vector<Op> ops(2);
    ops[0].kind = GateKind::AmpEmbed;
    ops[0].role = ParamRole::Embedding;
    ops[0].data_index = 0;
    ops[1].kind = GateKind::RY;
    ops[1].qubits = {0, -1};
    ops[1].role = ParamRole::Embedding;
    ops[1].data_index = 1;
    const std::vector<int> measured = {0};
    expect_only_error(lint::lint_circuit(CircuitView{2, 0, ops, measured}),
                      "embedding-order");
}

TEST(LintAdversarial, EmbeddingOrderPrefixViolation)
{
    // Legal circuit (variational gate before an embedding), illegal
    // only under the opt-in prefix requirement.
    Circuit c(2);
    c.add_variational(GateKind::RX, {0});
    c.add_embedding(GateKind::RY, {1}, 0);
    c.set_measured({0, 1});
    expect_no_errors(lint::lint_circuit(c), "prefix not required");
    LintOptions options;
    options.require_embedding_prefix = true;
    expect_only_error(lint::lint_circuit(c, options), "embedding-order");
}

TEST(LintAdversarial, ConnectivityOffCouplingEdge)
{
    // ibm_lagos is the 7-qubit falcon "H": (0,2) is not an edge.
    const dev::Device device = dev::make_device("ibm_lagos");
    Circuit c(device.num_qubits());
    c.add_gate(GateKind::CX, {0, 2});
    c.set_measured({0});
    LintOptions options;
    options.device = &device;
    const Report report = lint::lint_circuit(c, options);
    EXPECT_TRUE(report.fired("connectivity")) << report.to_string();
    // The same circuit is structurally fine without a device.
    expect_no_errors(lint::lint_circuit(c), "no device context");
}

TEST(LintAdversarial, CliffordReplicaUnsnappedRotation)
{
    Circuit c(2);
    c.add_variational(GateKind::RX, {0});
    c.add_gate(GateKind::CX, {0, 1});
    c.set_measured({0, 1});
    expect_no_errors(lint::lint_circuit(c), "replica rules off");
    LintOptions options;
    options.expect_clifford_replica = true;
    expect_only_error(lint::lint_circuit(c, options), "clifford-replica");
}

TEST(LintAdversarial, MeasurementOutOfRangeAndDuplicate)
{
    std::vector<Op> ops(1);
    ops[0].kind = GateKind::H;
    ops[0].qubits = {0, -1};
    const std::vector<int> measured = {0, 0, 9};
    const Report report =
        lint::lint_circuit(CircuitView{2, 0, ops, measured});
    expect_only_error(report, "measurement");
    EXPECT_EQ(report.count(Severity::Error), 2u); // dup + out-of-range
}

TEST(LintAdversarial, MeasurementEmptyWarns)
{
    Circuit c(1);
    c.add_gate(GateKind::H, {0});
    const Report report = lint::lint_circuit(c);
    EXPECT_FALSE(report.has_errors());
    EXPECT_TRUE(report.fired("measurement"));
    EXPECT_EQ(report.count(Severity::Warning), 1u);
}

TEST(LintAdversarial, DeadCodeUnusedQubitWarns)
{
    Circuit c(3);
    c.add_gate(GateKind::H, {0});
    c.set_measured({0});
    const Report report = lint::lint_circuit(c);
    EXPECT_FALSE(report.has_errors());
    EXPECT_TRUE(report.fired("dead-code")) << report.to_string();
}

TEST(LintAdversarial, DeadCodeUntrainedParameterSlot)
{
    // Declared 2 slots, only slot 0 bound: slot 1 is optimizer noise.
    std::vector<Op> ops(1);
    ops[0].kind = GateKind::RX;
    ops[0].qubits = {0, -1};
    ops[0].role = ParamRole::Variational;
    ops[0].param_index = 0;
    const std::vector<int> measured = {0};
    const Report report =
        lint::lint_circuit(CircuitView{1, 2, ops, measured});
    EXPECT_FALSE(report.has_errors()) << report.to_string();
    EXPECT_TRUE(report.fired("dead-code")) << report.to_string();
}

TEST(LintAdversarial, DisabledRulesAreSkipped)
{
    std::vector<Op> ops(1);
    ops[0].kind = GateKind::H;
    ops[0].qubits = {5, -1};
    const std::vector<int> measured = {0};
    LintOptions options;
    options.disabled_rules = {"qubit-bounds", "dead-code"};
    const Report report =
        lint::lint_circuit(CircuitView{2, 0, ops, measured}, options);
    EXPECT_FALSE(report.fired("qubit-bounds")) << report.to_string();
}

// ---------------------------------------------------------------------
// Fused-program pass.
// ---------------------------------------------------------------------

TEST(LintProgram, CompiledProgramIsClean)
{
    Circuit c(3);
    circ::append_angle_embedding(c, 3);
    c.add_variational(GateKind::RX, {0});
    c.add_gate(GateKind::CX, {0, 1});
    c.add_gate(GateKind::H, {2});
    c.add_variational(GateKind::CRY, {1, 2});
    c.set_measured({0, 1, 2});
    const sim::FusedProgram program = sim::FusedProgram::compile(c);
    expect_no_errors(lint::lint_program(program, c), "fused program");
}

TEST(LintProgram, StaleCacheEntryDetected)
{
    // Lint a program against a circuit it was not compiled from —
    // the FusionCache precondition the rule exists to guard.
    Circuit compiled_from(2);
    compiled_from.add_gate(GateKind::H, {0});
    compiled_from.add_variational(GateKind::RX, {1});
    compiled_from.set_measured({0, 1});
    Circuit other(2);
    other.add_gate(GateKind::H, {0});
    other.add_gate(GateKind::X, {1});
    other.add_variational(GateKind::RX, {1});
    other.set_measured({0, 1});
    const sim::FusedProgram program =
        sim::FusedProgram::compile(compiled_from);
    const Report report = lint::lint_program(program, other);
    EXPECT_TRUE(report.has_errors()) << report.to_string();
    EXPECT_TRUE(report.fired("fusion-barrier")) << report.to_string();
}

TEST(LintProgram, RetargetedBarrierBindingDetected)
{
    // Same op count, but the source's embedding binds another feature:
    // every surviving barrier must match the source verbatim.
    Circuit compiled_from(1);
    compiled_from.add_embedding(GateKind::RY, {0}, 0);
    compiled_from.set_measured({0});
    Circuit other(1);
    other.add_embedding(GateKind::RY, {0}, 3);
    other.set_measured({0});
    const sim::FusedProgram program =
        sim::FusedProgram::compile(compiled_from);
    const Report report = lint::lint_program(program, other);
    EXPECT_TRUE(report.fired("fusion-barrier")) << report.to_string();
}

// ---------------------------------------------------------------------
// Device pass.
// ---------------------------------------------------------------------

TEST(LintDevice, CatalogDevicesAreClean)
{
    for (const auto &name : dev::device_catalog()) {
        const Report report = lint::lint_device(dev::make_device(name));
        expect_no_errors(report, name);
        EXPECT_EQ(report.count(Severity::Warning), 0u)
            << name << ":\n"
            << report.to_string();
    }
}

TEST(LintDevice, DisconnectedTopologyWarns)
{
    // Topology's constructor already rejects self-loops, out-of-range
    // endpoints, and duplicates, so the reachable topology finding is
    // connectivity of the graph itself: an island qubit no router can
    // reach. (The error branches stay as defense for future
    // deserialized topologies.)
    dev::Device device = dev::make_device("ibmq_manila");
    device.topology = dev::Topology(3, {{0, 1}}); // qubit 2 stranded
    device.t1_us.resize(3, 100.0);
    device.t2_us.resize(3, 100.0);
    device.readout_error.resize(3, 0.01);
    device.error_1q.resize(3, 0.001);
    device.error_2q = {0.01};
    const Report report = lint::lint_device(device);
    EXPECT_TRUE(report.fired("device-topology")) << report.to_string();
    EXPECT_GE(report.count(Severity::Warning), 1u) << report.to_string();
}

TEST(LintDevice, CalibrationOutOfRange)
{
    dev::Device device = dev::make_device("ibmq_manila");
    device.readout_error[0] = 1.5;              // probability > 1
    device.t1_us[1] = 0.0;                      // non-positive T1
    device.error_1q.pop_back();                 // wrong vector size
    const Report report = lint::lint_device(device);
    EXPECT_TRUE(report.fired("device-calibration")) << report.to_string();
    EXPECT_FALSE(report.fired("device-topology")) << report.to_string();
    EXPECT_GE(report.count(Severity::Error), 3u) << report.to_string();
}

// ---------------------------------------------------------------------
// Clean passes over everything the library builds.
// ---------------------------------------------------------------------

TEST(LintClean, BuilderTemplates)
{
    using circ::EmbeddingScheme;
    LintOptions prefix;
    prefix.require_embedding_prefix = true;
    expect_no_errors(
        lint::lint_circuit(circ::build_human_designed(
                               4, 4, 12, 2, EmbeddingScheme::Angle),
                           prefix),
        "human-designed/angle");
    expect_no_errors(
        lint::lint_circuit(circ::build_human_designed(
                               4, 4, 12, 2, EmbeddingScheme::IQP),
                           prefix),
        "human-designed/iqp");
    expect_no_errors(
        lint::lint_circuit(circ::build_human_designed(
                               4, 16, 12, 2, EmbeddingScheme::Amplitude),
                           prefix),
        "human-designed/amplitude");
    elv::Rng rng(11);
    expect_no_errors(
        lint::lint_circuit(circ::build_random_rxyz_cz(4, 4, 16, 2, rng),
                           prefix),
        "random-rxyz-cz");
}

TEST(LintClean, BaselineGenerators)
{
    base::BaselineShape shape;
    elv::Rng rng(5);
    for (const Circuit &c : base::random_baseline(shape, 4, rng))
        expect_no_errors(lint::lint_circuit(c), "random baseline");
    for (const Circuit &c : base::human_baseline(shape))
        expect_no_errors(lint::lint_circuit(c), "human baseline");
}

TEST(LintClean, GeneratedCandidatesOnEveryDevice)
{
    for (const auto &name : dev::device_catalog()) {
        const dev::Device device = dev::make_device(name);
        elv::Rng rng(23);
        core::CandidateConfig config;
        config.num_qubits = std::min(4, device.num_qubits());
        config.num_params = 10;
        config.num_embeds = 4;
        config.num_meas = 2;
        config.num_features = 4;
        LintOptions options;
        options.device = &device;
        for (int i = 0; i < 3; ++i) {
            const Circuit c =
                core::generate_candidate(device, config, rng);
            expect_no_errors(lint::lint_circuit(c, options),
                             name + "/candidate");
        }
    }
}

TEST(LintClean, CompiledCandidatesSatisfyConnectivityOnEveryDevice)
{
    // The acceptance bar for the post-SABRE pass: device-unaware
    // circuits routed through the compiler must come out with zero
    // connectivity violations on every bundled device.
    for (const auto &name : dev::device_catalog()) {
        const dev::Device device = dev::make_device(name);
        elv::Rng rng(29);
        core::CandidateConfig config;
        config.num_qubits = std::min(4, device.num_qubits());
        config.num_params = 8;
        config.num_embeds = 4;
        config.num_meas = 2;
        config.num_features = 4;
        LintOptions options;
        options.device = &device;
        for (int i = 0; i < 2; ++i) {
            const Circuit logical =
                core::generate_device_unaware(config, rng);
            const auto compiled =
                comp::compile_for_device(logical, device, 2, rng);
            const Report report =
                lint::lint_circuit(compiled.circuit, options);
            expect_no_errors(report, name + "/compiled");
            EXPECT_FALSE(report.fired("connectivity"))
                << name << ":\n"
                << report.to_string();
            const sim::FusedProgram fused =
                sim::FusedProgram::compile(compiled.circuit);
            expect_no_errors(
                lint::lint_program(fused, compiled.circuit, options),
                name + "/fused");
        }
    }
}

TEST(LintClean, CliffordReplicasPassReplicaRules)
{
    elv::Rng rng(17);
    Circuit c(3);
    circ::append_angle_embedding(c, 3);
    c.add_variational(GateKind::U3, {0});
    c.add_gate(GateKind::CX, {0, 1});
    c.add_variational(GateKind::CRY, {1, 2});
    c.set_measured({0, 1, 2});
    LintOptions options;
    options.expect_clifford_replica = true;
    for (int i = 0; i < 5; ++i) {
        const Circuit replica = circ::make_clifford_replica(c, rng);
        expect_no_errors(lint::lint_circuit(replica, options),
                         "clifford replica");
    }
}

// ---------------------------------------------------------------------
// Extensibility and reporting plumbing.
// ---------------------------------------------------------------------

TEST(LintPlumbing, CustomRuleRegistration)
{
    lint::Linter linter;
    const std::size_t builtin_count = linter.rules().size();
    linter.register_rule(
        {"no-swap", Severity::Warning, "SWAP gates are expensive"},
        [](const CircuitView &view, const LintOptions &, Report &out) {
            for (std::size_t i = 0; i < view.ops.size(); ++i)
                if (view.ops[i].kind == GateKind::SWAP)
                    out.add(Severity::Warning, "no-swap",
                            static_cast<int>(i), "SWAP gate");
        });
    EXPECT_EQ(linter.rules().size(), builtin_count + 1);
    Circuit c(2);
    c.add_gate(GateKind::SWAP, {0, 1});
    c.set_measured({0, 1});
    const Report report = linter.lint(lint::view_of(c));
    EXPECT_TRUE(report.fired("no-swap")) << report.to_string();
    EXPECT_FALSE(report.has_errors());
}

TEST(LintPlumbing, CatalogCoversEveryRule)
{
    const auto &catalog = lint::rule_catalog();
    const char *expected[] = {
        "qubit-bounds",   "param-binding",    "embedding-order",
        "connectivity",   "clifford-replica", "measurement",
        "dead-code",      "fusion-barrier",   "device-topology",
        "device-calibration", "precision-misuse", "dead-lightcone",
        "dead-parameter", "clifford-region"};
    for (const char *id : expected) {
        bool found = false;
        for (const auto &rule : catalog)
            if (rule.id == id)
                found = true;
        EXPECT_TRUE(found) << id;
    }
}

TEST(LintPlumbing, CatalogMatchesDesignDocRuleTable)
{
    // DESIGN.md section 10 documents every rule as a table row whose
    // first cell is the backticked kebab-case rule id; class-overview
    // tables use CamelCase names and metric tables use underscores, so
    // the charset filter isolates exactly the rule rows. The check is
    // bidirectional: an undocumented rule and a documented-but-removed
    // rule both fail.
    std::ifstream in(std::string(ELV_REPO_ROOT) + "/DESIGN.md");
    ASSERT_TRUE(in.good()) << "DESIGN.md not found under ELV_REPO_ROOT";
    std::set<std::string> documented;
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("| `", 0) != 0)
            continue;
        const std::size_t close = line.find('`', 3);
        if (close == std::string::npos)
            continue;
        const std::string id = line.substr(3, close - 3);
        if (id.empty() ||
            id.find_first_not_of(
                "abcdefghijklmnopqrstuvwxyz0123456789-") !=
                std::string::npos)
            continue;
        documented.insert(id);
    }
    std::set<std::string> implemented;
    for (const auto &rule : lint::rule_catalog())
        implemented.insert(rule.id);
    EXPECT_EQ(documented, implemented);
}

TEST(LintPlumbing, DiagnosticRendering)
{
    Report report;
    report.add(Severity::Error, "qubit-bounds", 3, "boom");
    report.add(Severity::Warning, "dead-code", -1, "meh");
    EXPECT_EQ(report.diagnostics[0].to_string(),
              "error[qubit-bounds] op 3: boom");
    EXPECT_EQ(report.diagnostics[1].to_string(),
              "warning[dead-code]: meh");
    EXPECT_TRUE(report.has_errors());
    EXPECT_EQ(report.count(Severity::Warning), 1u);
    Report other;
    other.add(Severity::Note, "x", -1, "y");
    report.merge(other);
    EXPECT_EQ(report.diagnostics.size(), 3u);
}

// ---------------------------------------------------------------------
// Pre-flight boundaries.
// ---------------------------------------------------------------------

/** RAII reset of the process-wide preflight-fatal override. */
struct PreflightFatalGuard
{
    bool saved = lint::preflight_fatal();
    ~PreflightFatalGuard() { lint::set_preflight_fatal(saved); }
};

TEST(LintPreflight, FatalModeThrowsOnErrors)
{
    PreflightFatalGuard guard;
    lint::set_preflight_fatal(true);
    const dev::Device device = dev::make_device("ibm_lagos");
    Circuit c(device.num_qubits());
    c.add_gate(GateKind::CX, {0, 2}); // not a coupling edge
    c.set_measured({0});
    LintOptions options;
    options.device = &device;
    EXPECT_THROW(
        lint::preflight(c, lint::Boundary::Executor, options),
        elv::InternalError);
}

TEST(LintPreflight, CountingModeRecordsViolations)
{
    PreflightFatalGuard guard;
    lint::set_preflight_fatal(false);
    obs::Registry::global().set_enabled(true);
    obs::Registry::global().reset();

    const dev::Device device = dev::make_device("ibm_lagos");
    Circuit bad(device.num_qubits());
    bad.add_gate(GateKind::CX, {0, 2});
    bad.set_measured({0});
    LintOptions options;
    options.device = &device;
    EXPECT_FALSE(
        lint::preflight(bad, lint::Boundary::Executor, options));

    Circuit good(device.num_qubits());
    good.add_gate(GateKind::CX, {0, 1});
    good.set_measured({0});
    EXPECT_TRUE(
        lint::preflight(good, lint::Boundary::Executor, options));

    const auto snapshot = obs::Registry::global().snapshot();
    std::uint64_t checked = 0, violations = 0;
    for (const auto &counter : snapshot.counters) {
        if (counter.name == "lint.circuits_checked")
            checked = counter.value;
        if (counter.name == "lint.violations")
            violations = counter.value;
    }
    obs::Registry::global().set_enabled(false);
    // The counters only record when the metric macros are compiled in;
    // under -DELV_OBS=OFF this test still covers the non-fatal return
    // values above.
#ifndef ELV_OBS_DISABLED
    EXPECT_GE(checked, 2u);
    EXPECT_EQ(violations, 1u);
#else
    (void)checked;
    (void)violations;
#endif
}

TEST(LintPreflight, SearchPipelineRunsCleanUnderFatalPreflight)
{
    // With throw-on-violation forced on, generation + compilation of
    // real candidates must cross every boundary without a diagnostic.
    PreflightFatalGuard guard;
    lint::set_preflight_fatal(true);
    const dev::Device device = dev::make_device("ibm_nairobi");
    elv::Rng rng(41);
    core::CandidateConfig config;
    config.num_qubits = 4;
    config.num_params = 8;
    config.num_embeds = 4;
    config.num_meas = 2;
    config.num_features = 4;
    for (int i = 0; i < 4; ++i)
        EXPECT_NO_THROW(core::generate_candidate(device, config, rng));
    const Circuit logical = core::generate_device_unaware(config, rng);
    EXPECT_NO_THROW(comp::compile_for_device(logical, device, 2, rng));
}

TEST(LintPreflight, BoundaryNames)
{
    EXPECT_STREQ(lint::boundary_name(lint::Boundary::CandidateGen),
                 "candidate-gen");
    EXPECT_STREQ(lint::boundary_name(lint::Boundary::CompilerOutput),
                 "compiler-output");
    EXPECT_STREQ(lint::boundary_name(lint::Boundary::Executor),
                 "executor");
}

} // namespace
