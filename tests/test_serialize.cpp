/**
 * @file
 * Serialization tests: native text round-trips every IR construct,
 * OpenQASM export carries bound angles and rejects amplitude
 * embeddings, malformed inputs produce usage errors, and the
 * expressibility metric behaves (entangling ansatze beat trivial ones,
 * cost accounting is exact).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "circuit/builders.hpp"
#include "circuit/serialize.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "core/expressibility.hpp"
#include "sim/statevector.hpp"

namespace {

using namespace elv;
using namespace elv::circ;

Circuit
sample_circuit()
{
    Circuit c(4);
    c.add_gate(GateKind::H, {0});
    c.add_embedding(GateKind::RX, {1}, 0);
    c.add_variational(GateKind::U3, {2});
    c.add_gate(GateKind::CX, {0, 1});
    c.add_embedding(GateKind::RZ, {3}, 1, 2); // product embedding
    c.add_variational(GateKind::CRY, {2, 3});
    c.add_gate(GateKind::SWAP, {0, 3});
    c.set_measured({1, 3});
    return c;
}

TEST(TextFormat, RoundTripPreservesStructure)
{
    const Circuit original = sample_circuit();
    const Circuit restored = from_text(to_text(original));

    EXPECT_EQ(restored.num_qubits(), original.num_qubits());
    EXPECT_EQ(restored.num_params(), original.num_params());
    EXPECT_EQ(restored.measured(), original.measured());
    ASSERT_EQ(restored.ops().size(), original.ops().size());
    for (std::size_t i = 0; i < original.ops().size(); ++i) {
        EXPECT_EQ(restored.ops()[i].kind, original.ops()[i].kind);
        EXPECT_EQ(restored.ops()[i].role, original.ops()[i].role);
        EXPECT_EQ(restored.ops()[i].qubits, original.ops()[i].qubits);
        EXPECT_EQ(restored.ops()[i].data_index,
                  original.ops()[i].data_index);
        EXPECT_EQ(restored.ops()[i].data_index2,
                  original.ops()[i].data_index2);
    }
    // Idempotent: text of the restored circuit matches.
    EXPECT_EQ(to_text(restored), to_text(original));
}

TEST(TextFormat, RoundTripPreservesSemantics)
{
    Rng rng(5);
    const Circuit original = build_random_rxyz_cz(4, 3, 12, 2, rng);
    const Circuit restored = from_text(to_text(original));

    std::vector<double> params(12);
    for (auto &p : params)
        p = rng.uniform(-M_PI, M_PI);
    const std::vector<double> x = {0.3, -0.4, 0.9};

    sim::StateVector a(4), b(4);
    a.run(original, params, x);
    b.run(restored, params, x);
    EXPECT_NEAR(a.overlap(b), 1.0, 1e-12);
}

TEST(TextFormat, AmplitudeEmbeddingRoundTrips)
{
    Circuit c(3);
    c.add_amplitude_embedding();
    c.add_variational(GateKind::RY, {0});
    c.set_measured({0});
    const Circuit restored = from_text(to_text(c));
    EXPECT_TRUE(restored.has_amplitude_embedding());
    EXPECT_EQ(restored.num_params(), 1);
}

TEST(TextFormat, StreamOperatorMatchesToText)
{
    const Circuit c = sample_circuit();
    std::ostringstream oss;
    oss << c;
    EXPECT_EQ(oss.str(), to_text(c));
}

TEST(TextFormat, RejectsMalformedInput)
{
    EXPECT_THROW(from_text(""), elv::UsageError);
    EXPECT_THROW(from_text("elv-circuit 2\nqubits 2\nmeasure 0\n"),
                 elv::UsageError);
    EXPECT_THROW(from_text("elv-circuit 1\nqubits 0\nmeasure 0\n"),
                 elv::UsageError);
    EXPECT_THROW(
        from_text("elv-circuit 1\nqubits 2\ngate BOGUS 0\nmeasure 0\n"),
        elv::UsageError);
    EXPECT_THROW(
        from_text("elv-circuit 1\nqubits 2\nembed RX 0\nmeasure 0\n"),
        elv::UsageError);
    // Missing measure line.
    EXPECT_THROW(from_text("elv-circuit 1\nqubits 2\ngate H 0\n"),
                 elv::UsageError);
}

TEST(Qasm, EmitsBoundAngles)
{
    Circuit c(2);
    c.add_embedding(GateKind::RX, {0}, 0);
    c.add_variational(GateKind::RY, {1});
    c.add_gate(GateKind::CX, {0, 1});
    c.set_measured({1});

    const std::string qasm = to_qasm(c, {1.5}, {0.25});
    EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(qasm.find("qreg q[2];"), std::string::npos);
    EXPECT_NE(qasm.find("rx(0.25) q[0];"), std::string::npos);
    EXPECT_NE(qasm.find("ry(1.5) q[1];"), std::string::npos);
    EXPECT_NE(qasm.find("cx q[0],q[1];"), std::string::npos);
    EXPECT_NE(qasm.find("measure q[1] -> c[0];"), std::string::npos);
}

TEST(Qasm, RejectsAmplitudeEmbedding)
{
    Circuit c(2);
    c.add_amplitude_embedding();
    c.set_measured({0});
    EXPECT_THROW(to_qasm(c, {}, {1.0}), elv::UsageError);
}

TEST(Expressibility, EntanglingAnsatzBeatsTrivial)
{
    // A single-rotation ansatz covers almost none of state space; a
    // multi-layer entangling ansatz approaches the Haar distribution,
    // so its KL divergence must be clearly smaller.
    Circuit trivial(3);
    trivial.add_variational(GateKind::RZ, {0});
    trivial.set_measured({0});

    Circuit rich(3);
    for (int layer = 0; layer < 4; ++layer) {
        for (int q = 0; q < 3; ++q) {
            rich.add_variational(GateKind::RY, {q});
            rich.add_variational(GateKind::RZ, {q});
        }
        rich.add_gate(GateKind::CX, {0, 1});
        rich.add_gate(GateKind::CX, {1, 2});
    }
    rich.set_measured({0});

    Rng r1(7), r2(7);
    core::ExpressibilityOptions options;
    options.num_pairs = 128;
    const auto kl_trivial =
        core::expressibility(trivial, r1, options);
    const auto kl_rich = core::expressibility(rich, r2, options);
    EXPECT_GT(kl_trivial.kl_divergence, 2.0 * kl_rich.kl_divergence);
    EXPECT_EQ(kl_rich.circuit_executions, 256u);
}

TEST(Expressibility, DeterministicGivenSeed)
{
    Rng rng(9);
    const Circuit c = build_random_rxyz_cz(3, 2, 9, 1, rng);
    Rng r1(3), r2(3);
    EXPECT_DOUBLE_EQ(core::expressibility(c, r1).kl_divergence,
                     core::expressibility(c, r2).kl_divergence);
}

} // namespace
