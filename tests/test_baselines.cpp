/**
 * @file
 * Baseline tests: SuperCircuit configuration algebra and weight-shared
 * training, fixed-mapping routing (the QuantumNAS co-search router),
 * the evolutionary co-search, the QuantumSupernet random search, and
 * the Random / Human-designed baselines.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/quantum_supernet.hpp"
#include "baselines/quantumnas.hpp"
#include "baselines/simple.hpp"
#include "baselines/supercircuit.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "compiler/compile.hpp"
#include "qml/synthetic.hpp"
#include "qml/trainer.hpp"
#include "sim/statevector.hpp"

namespace {

using namespace elv;
using namespace elv::base;
using namespace elv::circ;

TEST(SuperCircuitConfig, RandomConfigHitsBudget)
{
    Rng rng(1);
    const SuperCircuit super(4, 4, 4, 2);
    for (int target : {4, 10, 20}) {
        const SuperConfig config = super.random_config(target, rng);
        EXPECT_EQ(config.active_params(), target);
    }
}

TEST(SuperCircuitConfig, InstantiateMatchesSlotMap)
{
    Rng rng(2);
    const SuperCircuit super(4, 3, 4, 2);
    const SuperConfig config = super.random_config(12, rng);
    std::vector<int> slot_map;
    const Circuit c = super.instantiate(config, slot_map);
    EXPECT_EQ(c.num_params(), 12);
    EXPECT_EQ(slot_map.size(), 12u);
    // Slot indices must be distinct, sorted (emission order) and active.
    for (std::size_t i = 1; i < slot_map.size(); ++i)
        EXPECT_LT(slot_map[i - 1], slot_map[i]);
    for (int slot : slot_map)
        EXPECT_TRUE(config.rotation_active[static_cast<std::size_t>(
            slot)]);
}

TEST(SuperCircuitConfig, InheritedParamsGather)
{
    Rng rng(3);
    const SuperCircuit super(3, 2, 3, 1);
    const SuperConfig config = super.random_config(5, rng);
    std::vector<double> shared(
        static_cast<std::size_t>(super.num_slots()));
    for (std::size_t i = 0; i < shared.size(); ++i)
        shared[i] = static_cast<double>(i);
    const auto params = super.inherited_params(config, shared);
    ASSERT_EQ(params.size(), 5u);
    std::vector<int> slot_map;
    super.instantiate(config, slot_map);
    for (std::size_t i = 0; i < params.size(); ++i)
        EXPECT_DOUBLE_EQ(params[i],
                         static_cast<double>(slot_map[i]));
}

TEST(SuperCircuitConfig, MutationPreservesBudget)
{
    Rng rng(4);
    const SuperCircuit super(4, 4, 4, 2);
    SuperConfig config = super.random_config(14, rng);
    for (int step = 0; step < 20; ++step) {
        super.mutate_config(config, rng);
        EXPECT_EQ(config.active_params(), 14);
    }
}

TEST(SuperCircuitConfig, CrossoverRepairsBudget)
{
    Rng rng(5);
    const SuperCircuit super(4, 4, 4, 2);
    const SuperConfig a = super.random_config(14, rng);
    const SuperConfig b = super.random_config(14, rng);
    for (int trial = 0; trial < 10; ++trial) {
        const SuperConfig child = super.crossover(a, b, 14, rng);
        EXPECT_EQ(child.active_params(), 14);
    }
}

TEST(SuperCircuitConfig, CryEmbeddingAddsEntanglingEmbeds)
{
    Rng rng(6);
    const SuperCircuit super(4, 2, 4, 2, /*cry_embedding=*/true);
    const SuperConfig config = super.random_config(6, rng);
    std::vector<int> slot_map;
    const Circuit c = super.instantiate(config, slot_map);
    EXPECT_GT(c.count_kind(GateKind::CRY), 0);
    // CRY embeddings count as embedding gates but not parameters.
    EXPECT_EQ(c.num_params(), 6);
}

TEST(SuperCircuitTraining, WeightSharingImprovesInheritedLoss)
{
    // Weight-sharing transfer is weak (part of the paper's criticism of
    // SuperCircuit methods) and needs paper-scale data and epochs to
    // show up at all — hence the full-size moons set here.
    const qml::Benchmark bench = qml::make_benchmark("moons", 7, 1.0);
    const SuperCircuit super(4, 3, 2, 1);

    qml::TrainConfig tc;
    tc.epochs = 60;
    tc.seed = 8;
    const SuperTrainResult trained =
        train_supercircuit(super, bench.train, 10, tc);
    EXPECT_GT(trained.circuit_executions, 0u);

    // Inherited parameters must beat random parameters for random
    // configs, on average.
    Rng rng(9);
    double inherited_loss = 0.0, random_loss = 0.0;
    const int trials = 8;
    for (int t = 0; t < trials; ++t) {
        const SuperConfig config = super.random_config(10, rng);
        std::vector<int> slot_map;
        const Circuit c = super.instantiate(config, slot_map);
        const auto inherited =
            super.inherited_params(config, trained.shared_params);
        inherited_loss +=
            qml::evaluate(c, inherited, bench.test).loss;
        std::vector<double> random_params(10);
        for (auto &p : random_params)
            p = rng.uniform(-M_PI, M_PI);
        random_loss +=
            qml::evaluate(c, random_params, bench.test).loss;
    }
    EXPECT_LT(inherited_loss, random_loss);
}

TEST(FixedMappingRouter, PreservesSemantics)
{
    Rng rng(10);
    const dev::Device device = dev::make_device("ibmq_jakarta");
    const SuperCircuit super(4, 3, 3, 2);
    const SuperConfig config = super.random_config(8, rng);
    std::vector<int> slot_map;
    const Circuit logical = super.instantiate(config, slot_map);

    const std::vector<int> mapping = {6, 3, 1, 0};
    const Circuit physical = route_with_fixed_mapping(
        logical, device.topology, mapping);
    EXPECT_TRUE(comp::is_hardware_native(physical, device.topology));

    std::vector<double> params(8);
    for (auto &p : params)
        p = rng.uniform(-M_PI, M_PI);
    const std::vector<double> x = {0.2, -0.4, 0.9};

    const auto ideal =
        qml::class_probabilities(logical, params, x, 2);
    const auto mapped =
        qml::class_probabilities(physical, params, x, 2);
    for (std::size_t i = 0; i < ideal.size(); ++i)
        EXPECT_NEAR(ideal[i], mapped[i], 1e-10);
}

TEST(FixedMappingRouter, AdjacentMappingNeedsNoSwaps)
{
    const dev::Device device = dev::make_device("ibmq_manila");
    Circuit logical(3);
    logical.add_gate(GateKind::CX, {0, 1});
    logical.add_gate(GateKind::CX, {1, 2});
    logical.set_measured({2});
    const Circuit physical = route_with_fixed_mapping(
        logical, device.topology, {1, 2, 3});
    EXPECT_EQ(physical.count_kind(GateKind::SWAP), 0);
}

TEST(FixedMappingRouter, DistantMappingInsertsSwaps)
{
    const dev::Device device = dev::make_device("ibmq_manila");
    Circuit logical(2);
    logical.add_gate(GateKind::CX, {0, 1});
    logical.set_measured({1});
    const Circuit physical = route_with_fixed_mapping(
        logical, device.topology, {0, 4});
    EXPECT_EQ(physical.count_kind(GateKind::SWAP), 3);
    EXPECT_TRUE(comp::is_hardware_native(physical, device.topology));
}

TEST(QuantumNas, EndToEndCoSearch)
{
    const qml::Benchmark bench = qml::make_benchmark("moons", 11, 0.1);
    const dev::Device device = dev::make_device("ibmq_jakarta");
    const SuperCircuit super(4, 3, 2, 1);

    qml::TrainConfig tc;
    tc.epochs = 8;
    tc.seed = 12;
    const SuperTrainResult trained =
        train_supercircuit(super, bench.train, 10, tc);

    QuantumNasConfig config;
    config.population = 6;
    config.generations = 3;
    config.target_params = 10;
    config.valid_samples = 12;
    config.seed = 13;
    const QuantumNasResult result = quantumnas_search(
        super, trained.shared_params, device, bench.test, config);

    EXPECT_TRUE(
        comp::is_hardware_native(result.best_physical, device.topology));
    EXPECT_GE(result.best_fitness, 0.0);
    EXPECT_LE(result.best_fitness, 1.0);
    EXPECT_EQ(result.inherited_params.size(), 10u);
    // population + generations * (population - 1) evaluations, each
    // costing valid_samples executions.
    const std::uint64_t evals = 6 + 3 * 5;
    EXPECT_EQ(result.search_executions, evals * 12);
}

TEST(QuantumSupernet, RandomSearchPicksLowestLoss)
{
    const qml::Benchmark bench = qml::make_benchmark("moons", 14, 0.1);
    const SuperCircuit super(4, 3, 2, 1, /*cry_embedding=*/true);

    qml::TrainConfig tc;
    tc.epochs = 6;
    tc.seed = 15;
    const SuperTrainResult trained =
        train_supercircuit(super, bench.train, 8, tc);

    SupernetConfig config;
    config.num_samples = 10;
    config.target_params = 8;
    config.valid_samples = 12;
    config.seed = 16;
    const SupernetResult result =
        supernet_search(super, trained.shared_params, bench.test, config);
    EXPECT_EQ(result.search_executions, 10u * 12u);
    EXPECT_LT(result.best_loss,
              std::numeric_limits<double>::infinity());
    EXPECT_EQ(result.inherited_params.size(), 8u);

    // Verify the reported loss is reproducible for the chosen config.
    qml::Dataset subset = bench.test;
    Rng sub_rng(config.seed ^ 0x1234ULL);
    shuffle_dataset(subset, sub_rng);
    subset = qml::take(subset, 12);
    const auto eval = qml::evaluate(result.best_logical,
                                    result.inherited_params, subset);
    EXPECT_NEAR(eval.loss, result.best_loss, 1e-12);
}

TEST(SimpleBaselines, ShapesAndSchemes)
{
    Rng rng(17);
    BaselineShape shape;
    shape.num_qubits = 4;
    shape.num_features = 4;
    shape.num_params = 20;
    shape.num_meas = 2;

    const auto random = random_baseline(shape, 5, rng);
    ASSERT_EQ(random.size(), 5u);
    for (const auto &c : random) {
        EXPECT_EQ(c.num_params(), 20);
        EXPECT_EQ(c.measured().size(), 2u);
    }

    const auto human = human_baseline(shape);
    ASSERT_EQ(human.size(), 3u);
    EXPECT_FALSE(human[0].has_amplitude_embedding());
    EXPECT_TRUE(human[2].has_amplitude_embedding());
    for (const auto &c : human)
        EXPECT_GE(c.num_params(), 20);
}

} // namespace
