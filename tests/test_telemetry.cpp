/**
 * @file
 * Telemetry-plane tests: histogram quantile math against known
 * distributions, EWMA rate tracking under regular and irregular scrape
 * intervals, the Prometheus text exposition (name sanitization, series
 * shape, deterministic ordering), the bounded operational event ring
 * (paging, clipping, loss detection), the per-job span log, and the
 * sampling profiler's collapsed-stack artifact. The Concurrency suite
 * hammers tracer spans, metric updates and exposition renders from
 * many threads at once — it exists to run under TSan.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/events.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace {

using namespace elv;

/** One line of the exposition ("name value"), or "" when absent. */
std::string
sample_line(const std::string &text, const std::string &name)
{
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        if (line.rfind(name + " ", 0) == 0 ||
            line.rfind(name + "{", 0) == 0)
            return line;
    return "";
}

double
sample_value(const std::string &text, const std::string &name)
{
    const std::string line = sample_line(text, name);
    const auto space = line.rfind(' ');
    return space == std::string::npos
               ? std::nan("")
               : std::strtod(line.c_str() + space + 1, nullptr);
}

TEST(Quantile, EmptyAndMalformedAreNaN)
{
    const std::vector<double> edges{1.0, 2.0};
    EXPECT_TRUE(std::isnan(
        obs::histogram_quantile(edges, {0, 0, 0}, 0.5)));
    // counts must have edges+1 entries
    EXPECT_TRUE(std::isnan(obs::histogram_quantile(edges, {1, 2}, 0.5)));
    EXPECT_TRUE(std::isnan(obs::histogram_quantile({}, {}, 0.5)));
}

TEST(Quantile, UniformDistributionInterpolatesLinearly)
{
    // 100 observations spread evenly over one bucket (10, 20]: the
    // rank interpolates linearly inside the bucket.
    const std::vector<double> edges{10.0, 20.0};
    const std::vector<std::uint64_t> counts{0, 100, 0};
    EXPECT_DOUBLE_EQ(15.0,
                     obs::histogram_quantile(edges, counts, 0.5));
    EXPECT_DOUBLE_EQ(19.0,
                     obs::histogram_quantile(edges, counts, 0.9));
    EXPECT_DOUBLE_EQ(10.0 + 0.01 * 10.0,
                     obs::histogram_quantile(edges, counts, 0.01));
}

TEST(Quantile, FirstBucketInterpolatesFromZero)
{
    // Prometheus semantics: a rank inside the first bucket (whose
    // lower edge is implicit) interpolates from 0 when edges[0] > 0.
    const std::vector<double> edges{8.0};
    const std::vector<std::uint64_t> counts{4, 0};
    EXPECT_DOUBLE_EQ(4.0, obs::histogram_quantile(edges, counts, 0.5));
}

TEST(Quantile, KnownTwoBucketSplit)
{
    // 30 obs in (0,1], 70 in (1,2]: q50 has rank 50, 20 deep into the
    // 70-count second bucket -> 1 + 20/70.
    const std::vector<double> edges{1.0, 2.0};
    const std::vector<std::uint64_t> counts{30, 70, 0};
    EXPECT_NEAR(1.0 + 20.0 / 70.0,
                obs::histogram_quantile(edges, counts, 0.5), 1e-12);
    // q25 rank 25 sits inside the first bucket: 25/30 of the way.
    EXPECT_NEAR(25.0 / 30.0,
                obs::histogram_quantile(edges, counts, 0.25), 1e-12);
}

TEST(Quantile, OverflowClampsToLastFiniteEdge)
{
    const std::vector<double> edges{1.0, 2.0};
    const std::vector<std::uint64_t> counts{1, 1, 8};
    EXPECT_DOUBLE_EQ(2.0, obs::histogram_quantile(edges, counts, 0.99));
}

TEST(Quantile, HistogramSumAndQuantileAgreeWithObservations)
{
    obs::Registry registry;
    registry.set_enabled(true);
    obs::Histogram &h =
        registry.histogram("test.h", {1.0, 2.0, 4.0, 8.0});
    double expected_sum = 0.0;
    for (int i = 1; i <= 100; ++i) {
        const double v = 0.07 * i; // 0.07 .. 7.0
        h.observe(v);
        expected_sum += v;
    }
    EXPECT_NEAR(expected_sum, h.sum(), 1e-9);
    EXPECT_EQ(100u, h.total());
    // The true median is 3.535; bucketed interpolation lands inside
    // the (2,4] bucket.
    const double q50 = h.quantile(0.5);
    EXPECT_GT(q50, 2.0);
    EXPECT_LE(q50, 4.0);
    // Snapshot path computes the same estimate.
    const auto snap = registry.snapshot();
    ASSERT_EQ(1u, snap.histograms.size());
    EXPECT_DOUBLE_EQ(q50, snap.histograms[0].quantile(0.5));
    EXPECT_NEAR(expected_sum, snap.histograms[0].sum, 1e-9);
}

TEST(RateTracker, SteadyRateConvergesToEwma)
{
    obs::MetricsSnapshot snap;
    snap.counters.push_back({"c", 0});
    obs::RateTracker rates(10.0);
    rates.update(snap, 0.0); // seeds only
    EXPECT_DOUBLE_EQ(0.0, rates.rate("c"));
    // 50 events/second for a long time converges to 50/s.
    for (int t = 1; t <= 100; ++t) {
        snap.counters[0].value = static_cast<std::uint64_t>(50 * t);
        rates.update(snap, static_cast<double>(t));
    }
    EXPECT_NEAR(50.0, rates.rate("c"), 0.5);
}

TEST(RateTracker, IrregularIntervalsMatchRegularSteadyState)
{
    // The time-aware alpha makes scrape cadence irrelevant at steady
    // state: 10/s sampled every 1 s and every 3 s converge together.
    obs::RateTracker regular(5.0), irregular(5.0);
    obs::MetricsSnapshot snap;
    snap.counters.push_back({"c", 0});
    for (int t = 0; t <= 60; ++t) {
        snap.counters[0].value = static_cast<std::uint64_t>(10 * t);
        regular.update(snap, static_cast<double>(t));
    }
    for (int t = 0; t <= 60; t += 3) {
        snap.counters[0].value = static_cast<std::uint64_t>(10 * t);
        irregular.update(snap, static_cast<double>(t));
    }
    EXPECT_NEAR(regular.rate("c"), irregular.rate("c"), 0.5);
}

TEST(RateTracker, CounterResetReseedsInsteadOfGoingNegative)
{
    obs::RateTracker rates(5.0);
    obs::MetricsSnapshot snap;
    snap.counters.push_back({"c", 1000});
    rates.update(snap, 0.0);
    snap.counters[0].value = 2000;
    rates.update(snap, 1.0);
    EXPECT_GT(rates.rate("c"), 0.0);
    snap.counters[0].value = 5; // process restarted
    rates.update(snap, 2.0);
    EXPECT_GE(rates.rate("c"), 0.0);
}

TEST(Exposition, SanitizesNamesWithPrefix)
{
    EXPECT_EQ("elv_server_queue_depth",
              obs::prometheus_metric_name("server.queue.depth"));
    EXPECT_EQ("elv_a_b_c", obs::prometheus_metric_name("a-b c"));
}

TEST(Exposition, RendersEverySeriesShape)
{
    obs::Registry registry;
    registry.set_enabled(true);
    registry.counter("test.hits").add(3);
    registry.gauge("test.depth").set(7);
    obs::Histogram &h = registry.histogram("test.lat", {0.5, 1.0});
    h.observe(0.25);
    h.observe(0.75);
    h.observe(9.0);

    const std::string text =
        obs::render_prometheus(registry.snapshot());

    EXPECT_NE(std::string::npos,
              text.find("# TYPE elv_test_hits_total counter"));
    EXPECT_DOUBLE_EQ(3.0, sample_value(text, "elv_test_hits_total"));
    EXPECT_DOUBLE_EQ(7.0, sample_value(text, "elv_test_depth"));
    EXPECT_DOUBLE_EQ(7.0, sample_value(text, "elv_test_depth_max"));
    // Cumulative buckets plus +Inf, sum and count.
    EXPECT_EQ("elv_test_lat_bucket{le=\"0.5\"} 1",
              sample_line(text, "elv_test_lat_bucket"));
    EXPECT_NE(std::string::npos,
              text.find("elv_test_lat_bucket{le=\"1\"} 2"));
    EXPECT_NE(std::string::npos,
              text.find("elv_test_lat_bucket{le=\"+Inf\"} 3"));
    EXPECT_DOUBLE_EQ(3.0, sample_value(text, "elv_test_lat_count"));
    EXPECT_NEAR(10.0, sample_value(text, "elv_test_lat_sum"), 1e-9);
    // Server-side quantile gauges.
    EXPECT_FALSE(sample_line(text, "elv_test_lat_q50").empty());
    EXPECT_FALSE(sample_line(text, "elv_test_lat_q99").empty());
}

TEST(Exposition, OutputIsDeterministicallyOrdered)
{
    obs::Registry registry;
    registry.set_enabled(true);
    registry.counter("z.last").add(1);
    registry.counter("a.first").add(1);
    const std::string text =
        obs::render_prometheus(registry.snapshot());
    EXPECT_LT(text.find("elv_a_first_total"),
              text.find("elv_z_last_total"));
    // Byte-identical across renders of the same state.
    EXPECT_EQ(text, obs::render_prometheus(registry.snapshot()));
}

TEST(Exposition, RateGaugesAppearAfterTwoScrapes)
{
    obs::Registry registry;
    registry.set_enabled(true);
    registry.counter("test.ops").add(100);
    obs::Exposition exposition(5.0);
    const std::string first = exposition.render(registry, 0.0);
    EXPECT_DOUBLE_EQ(0.0, sample_value(first, "elv_test_ops_rate"));
    registry.counter("test.ops").add(100);
    const std::string second = exposition.render(registry, 1.0);
    EXPECT_GT(sample_value(second, "elv_test_ops_rate"), 0.0);
}

TEST(EventRing, EmitsMonotonicSeqAndPages)
{
    obs::EventRing ring(8);
    for (int i = 0; i < 5; ++i)
        ring.emit("kind", "subject-" + std::to_string(i), "d");
    const obs::EventSlice all = ring.since(0, 64);
    ASSERT_EQ(5u, all.events.size());
    EXPECT_EQ(1u, all.first_seq);
    EXPECT_EQ(5u, all.last_seq);
    for (std::size_t i = 0; i < all.events.size(); ++i)
        EXPECT_EQ(i + 1, all.events[i].seq);
    // Cursor-based paging returns only newer events.
    const obs::EventSlice page = ring.since(3, 64);
    ASSERT_EQ(2u, page.events.size());
    EXPECT_EQ(4u, page.events[0].seq);
    // A cursor at (or past) the newest event returns nothing.
    EXPECT_TRUE(ring.since(5, 64).events.empty());
    EXPECT_TRUE(ring.since(500, 64).events.empty());
}

TEST(EventRing, OverflowDropsOldestAndReportsLoss)
{
    obs::EventRing ring(4);
    for (int i = 1; i <= 10; ++i)
        ring.emit("k", std::to_string(i), "");
    const obs::EventSlice slice = ring.since(0, 64);
    // Only the newest 4 survive; first_seq exposes the loss.
    ASSERT_EQ(4u, slice.events.size());
    EXPECT_EQ(7u, slice.first_seq);
    EXPECT_EQ(7u, slice.events[0].seq);
    EXPECT_EQ("7", slice.events[0].subject);
    EXPECT_EQ(10u, slice.last_seq);
}

TEST(EventRing, LimitClipsToNewest)
{
    obs::EventRing ring(16);
    for (int i = 1; i <= 10; ++i)
        ring.emit("k", std::to_string(i), "");
    const obs::EventSlice slice = ring.since(0, 3);
    ASSERT_EQ(3u, slice.events.size());
    EXPECT_EQ(8u, slice.events[0].seq); // newest-preferred clip
    EXPECT_EQ(10u, slice.events[2].seq);
}

TEST(SpanLog, CollectsSortedSpansAndWritesChromeTrace)
{
    obs::SpanLog log;
    log.add_span("late", "phase", 100.0, 50.0);
    log.add_span("early", "phase", 0.0, 100.0);
    log.add_span("sized", "phase", 200.0, 10.0, 42, true);
    const auto events = log.events();
    ASSERT_EQ(3u, events.size());
    EXPECT_EQ("early", events[0].name); // sorted by start time
    EXPECT_EQ("late", events[1].name);

    const std::string doc = obs::chrome_trace_json(events);
    EXPECT_NE(std::string::npos, doc.find("\"traceEvents\""));
    EXPECT_NE(std::string::npos, doc.find("\"early\""));
    EXPECT_NE(std::string::npos, doc.find("\"i\": 42"));

    const std::string path =
        ::testing::TempDir() + "elv_spanlog_trace.json";
    EXPECT_TRUE(log.write(path));
    std::ifstream in(path);
    EXPECT_TRUE(in.good());
    std::remove(path.c_str());
}

TEST(Profiler, WritesCollapsedStacksWhileBusy)
{
    obs::Profiler &profiler = obs::Profiler::global();
    if (!profiler.start(997)) // high rate: the busy loop below is short
        GTEST_SKIP() << "profiler unsupported in this build";
    // Burn CPU so SIGPROF (which counts CPU time) actually fires.
    volatile double sink = 0.0;
    while (profiler.stats().samples < 5 && sink < 1e18) {
        double burn = 0.0;
        for (int i = 0; i < 100000; ++i)
            burn += std::sqrt(static_cast<double>(i));
        sink = sink + burn;
    }
    const std::string path = ::testing::TempDir() + "elv_prof.folded";
    EXPECT_TRUE(profiler.write_collapsed(path));
    EXPECT_FALSE(profiler.running());
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string folded = buf.str();
    EXPECT_FALSE(folded.empty());
    // Every line is "frame(;frame)* count".
    std::istringstream lines(folded);
    std::string line;
    while (std::getline(lines, line)) {
        ASSERT_FALSE(line.empty());
        const auto space = line.rfind(' ');
        ASSERT_NE(std::string::npos, space);
        EXPECT_GT(std::strtoull(line.c_str() + space + 1, nullptr, 10),
                  0u);
    }
    std::remove(path.c_str());
}

TEST(Profiler, StartRejectsBadRatesAndDoubleStart)
{
    obs::Profiler &profiler = obs::Profiler::global();
    EXPECT_FALSE(profiler.start(0));
    EXPECT_FALSE(profiler.start(100000));
    if (!profiler.start(97))
        GTEST_SKIP() << "profiler unsupported in this build";
    EXPECT_FALSE(profiler.start(97)); // already running
    profiler.stop();
    EXPECT_FALSE(profiler.running());
}

/**
 * TSan target: concurrent span logging, metric updates, event
 * emission and exposition scrapes must be free of data races.
 */
TEST(Concurrency, ScrapeWhileInstrumentingIsRaceFree)
{
    obs::Registry registry;
    registry.set_enabled(true);
    obs::EventRing ring(64);
    obs::SpanLog spans;
    obs::Exposition exposition;
    std::atomic<bool> stop{false};

    std::vector<std::thread> writers;
    for (int w = 0; w < 4; ++w)
        writers.emplace_back([&, w] {
            for (int i = 0; i < 500; ++i) {
                registry.counter("test.ops").add(1);
                registry.gauge("test.depth").set(i);
                registry.histogram("test.lat", {0.5, 1.0})
                    .observe(0.1 * (i % 20));
                ring.emit("tick", "w" + std::to_string(w), "");
                spans.add_span("op", "test", 10.0 * i, 5.0);
            }
        });
    std::thread scraper([&] {
        double now = 0.0;
        while (!stop.load()) {
            const std::string text =
                exposition.render(registry, now += 0.01);
            EXPECT_NE(std::string::npos, text.find("elv_test_ops"));
            (void)ring.since(0, 16);
            (void)spans.events();
        }
    });
    for (auto &t : writers)
        t.join();
    stop.store(true);
    scraper.join();

    EXPECT_EQ(2000u, registry.snapshot().counter("test.ops"));
    EXPECT_EQ(2000u, spans.events().size());
    EXPECT_EQ(2000u, ring.since(0, 1).last_seq);
}

} // namespace
