/**
 * @file
 * Search-service tests: the wire-format JSON parser, the job model,
 * protocol request handling, admission control and the overload ladder
 * (explicit rejections with retry-after, priority shedding), per-job
 * deadlines and cancellation (a cancelled job releases its thread
 * quota and leaves no partial results), crash recovery (a job
 * interrupted by a hard stop resumes on the next start to a
 * bit-identical result), and the TCP transport end to end.
 */
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "common/logging.hpp"
#include "server/http.hpp"
#include "server/job.hpp"
#include "server/json_value.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "server/tcp.hpp"

namespace {

using namespace elv;
using namespace elv::srv;

/** Fresh per-test data directory under the gtest temp dir. */
std::string
fresh_dir(const std::string &name)
{
    const std::string path = ::testing::TempDir() + "elv_srv_" + name;
    std::filesystem::remove_all(path);
    return path;
}

/** A job that completes in well under a second. */
JobSpec
quick_spec(std::uint64_t seed = 21)
{
    JobSpec spec;
    spec.benchmark = "moons";
    spec.candidates = 6;
    spec.scale = 0.05;
    spec.seed = seed;
    return spec;
}

/** A job that runs long enough to observe and interrupt mid-flight. */
JobSpec
long_spec(std::uint64_t seed = 33)
{
    JobSpec spec = quick_spec(seed);
    spec.candidates = 64;
    spec.scale = 0.1;
    return spec;
}

/** Small-footprint server config over a fresh directory. */
ServerConfig
small_config(const std::string &dir)
{
    ServerConfig config;
    config.data_dir = dir;
    config.queue_capacity = 2;
    config.workers = 1;
    config.thread_budget = 2;
    return config;
}

/** Poll `id` until `done(snapshot)` or the deadline; asserts on it. */
JobStatusSnapshot
wait_for(Server &server, const std::string &id,
         bool (*done)(const JobStatusSnapshot &),
         double timeout_sec = 120.0)
{
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double>(timeout_sec);
    while (std::chrono::steady_clock::now() < deadline) {
        const auto snap = server.status(id);
        if (snap && done(*snap))
            return *snap;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ADD_FAILURE() << "timed out waiting on " << id;
    const auto snap = server.status(id);
    return snap ? *snap : JobStatusSnapshot{};
}

bool
is_terminal(const JobStatusSnapshot &snap)
{
    return job_state_terminal(snap.state);
}

/** Field of a one-line JSON document (empty when absent). */
std::string
json_field(const std::string &doc, const std::string &key)
{
    JsonValue value;
    std::string error;
    if (!json_parse(doc, value, error))
        return "";
    const JsonValue *field = value.get(key);
    if (!field)
        return "";
    if (field->is_string())
        return field->text;
    return field->text.empty() ? "" : field->text; // raw number token
}

// --- JSON parser -----------------------------------------------------

TEST(JsonValue, ParsesNestedDocument)
{
    JsonValue value;
    std::string error;
    ASSERT_TRUE(json_parse(
        R"({"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "d": true,)"
        R"( "e": null})",
        value, error))
        << error;
    ASSERT_TRUE(value.is_object());
    const JsonValue *a = value.get("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->items.size(), 3u);
    EXPECT_EQ(a->items[0].as_int(), 1);
    EXPECT_DOUBLE_EQ(a->items[1].as_number(), 2.5);
    EXPECT_DOUBLE_EQ(a->items[2].as_number(), -300.0);
    const JsonValue *b = value.get("b");
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->get("c")->as_string(), "x\ny");
    EXPECT_TRUE(value.get("d")->as_bool(false));
    EXPECT_EQ(value.get("e")->kind, JsonValue::Kind::Null);
}

TEST(JsonValue, PreservesLargeSeedsExactly)
{
    JsonValue value;
    std::string error;
    // 2^64 - 1: past the double-precision cliff at 2^53.
    ASSERT_TRUE(json_parse(R"({"seed": 18446744073709551615})", value,
                           error));
    EXPECT_EQ(value.get("seed")->as_uint(0),
              18446744073709551615ull);
}

TEST(JsonValue, RejectsMalformedInput)
{
    JsonValue value;
    std::string error;
    EXPECT_FALSE(json_parse("", value, error));
    EXPECT_FALSE(json_parse("{", value, error));
    EXPECT_FALSE(json_parse(R"({"a": 1} trailing)", value, error));
    EXPECT_FALSE(json_parse(R"({"a": })", value, error));
    EXPECT_FALSE(json_parse(R"("unterminated)", value, error));
    EXPECT_FALSE(json_parse(R"({"a": 1e})", value, error));
    EXPECT_FALSE(json_parse("{\"a\": \"\x01\"}", value, error));
    // Depth bomb: bounded recursion, not a stack overflow.
    std::string bomb;
    for (int i = 0; i < 2000; ++i)
        bomb += '[';
    EXPECT_FALSE(json_parse(bomb, value, error));
}

TEST(JsonValue, DecodesEscapes)
{
    JsonValue value;
    std::string error;
    ASSERT_TRUE(json_parse(R"({"s": "a\t\"\\é€"})", value,
                           error))
        << error;
    EXPECT_EQ(value.get("s")->as_string(),
              "a\t\"\\\xc3\xa9\xe2\x82\xac");
    EXPECT_FALSE(json_parse(R"({"s": "\ud800"})", value, error));
}

// --- Job model -------------------------------------------------------

TEST(JobSpec, JsonRoundTrip)
{
    JobSpec spec;
    spec.benchmark = "bank";
    spec.device = "ibm_nairobi";
    spec.candidates = 12;
    spec.seed = 18446744073709551615ull;
    spec.scale = 0.25;
    spec.priority = 3;
    spec.deadline_sec = 4.5;

    JsonValue value;
    std::string error;
    ASSERT_TRUE(json_parse(spec.to_json(), value, error)) << error;
    JobSpec parsed;
    ASSERT_TRUE(JobSpec::from_json(value, parsed, error)) << error;
    EXPECT_EQ(parsed.benchmark, spec.benchmark);
    EXPECT_EQ(parsed.device, spec.device);
    EXPECT_EQ(parsed.candidates, spec.candidates);
    EXPECT_EQ(parsed.seed, spec.seed);
    EXPECT_DOUBLE_EQ(parsed.scale, spec.scale);
    EXPECT_EQ(parsed.priority, spec.priority);
    EXPECT_DOUBLE_EQ(parsed.deadline_sec, spec.deadline_sec);
}

TEST(JobSpec, FromJsonRejectsBadFields)
{
    JsonValue value;
    std::string error;
    JobSpec spec;
    ASSERT_TRUE(json_parse(R"({"candidates": 0})", value, error));
    EXPECT_FALSE(JobSpec::from_json(value, spec, error));
    ASSERT_TRUE(json_parse(R"({"scale": 2.0})", value, error));
    EXPECT_FALSE(JobSpec::from_json(value, spec, error));
    ASSERT_TRUE(json_parse(R"({"deadline_sec": -1})", value, error));
    EXPECT_FALSE(JobSpec::from_json(value, spec, error));
    ASSERT_TRUE(json_parse(R"([1,2])", value, error));
    EXPECT_FALSE(JobSpec::from_json(value, spec, error));
}

TEST(JobState, NamesRoundTripAndTerminality)
{
    for (const JobState state :
         {JobState::Queued, JobState::Running, JobState::Completed,
          JobState::Failed, JobState::Cancelled, JobState::Rejected}) {
        const auto parsed = job_state_from_name(job_state_name(state));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, state);
    }
    EXPECT_FALSE(job_state_from_name("bogus").has_value());
    EXPECT_FALSE(job_state_terminal(JobState::Queued));
    EXPECT_FALSE(job_state_terminal(JobState::Running));
    EXPECT_TRUE(job_state_terminal(JobState::Completed));
    EXPECT_TRUE(job_state_terminal(JobState::Rejected));
}

// --- Server lifecycle ------------------------------------------------

TEST(Server, RunsAJobToCompletion)
{
    Server server(small_config(fresh_dir("complete")));
    const SubmitOutcome outcome = server.submit(quick_spec());
    ASSERT_TRUE(outcome.accepted) << outcome.error;
    EXPECT_EQ(outcome.id, "job-1");

    const auto snap = wait_for(server, outcome.id, is_terminal);
    EXPECT_EQ(snap.state, JobState::Completed);
    EXPECT_GT(snap.best_score, 0.0);

    const auto result = server.result_json(outcome.id);
    ASSERT_TRUE(result.has_value());
    EXPECT_FALSE(json_field(*result, "best_score_hex").empty());
    EXPECT_FALSE(json_field(*result, "circuit").empty());
    EXPECT_EQ(server.threads_in_use(), 0);
}

TEST(Server, RejectsInvalidSpecs)
{
    Server server(small_config(fresh_dir("invalid")));
    JobSpec bad = quick_spec();
    bad.benchmark = "no_such_benchmark";
    EXPECT_FALSE(server.submit(bad).accepted);
    bad = quick_spec();
    bad.device = "no_such_device";
    EXPECT_FALSE(server.submit(bad).accepted);
    bad = quick_spec();
    bad.candidates = 0;
    EXPECT_FALSE(server.submit(bad).accepted);
    // Nothing was admitted or recorded.
    EXPECT_TRUE(server.jobs().empty());
}

TEST(Server, OverloadRejectsExplicitlyWithRetryAfter)
{
    Server server(small_config(fresh_dir("overload")));

    // Flood a capacity-2 queue. The single worker drains one job at a
    // time, so at least the tail of the flood must see "queue full" —
    // an explicit rejection with a retry hint, never a hang or a
    // silent drop.
    std::vector<std::string> accepted;
    SubmitOutcome rejected;
    for (int i = 0; i < 12 && rejected.error.empty(); ++i) {
        const SubmitOutcome outcome =
            server.submit(long_spec(100 + static_cast<unsigned>(i)));
        if (outcome.accepted)
            accepted.push_back(outcome.id);
        else
            rejected = outcome;
    }
    ASSERT_FALSE(rejected.error.empty())
        << "flooding a bounded queue must reject";
    EXPECT_NE(rejected.error.find("queue full"), std::string::npos);
    EXPECT_GT(rejected.retry_after_ms, 0.0);

    // Priority shedding: with the queue still full, a higher-priority
    // arrival displaces the lowest-priority queued job, which ends
    // Rejected with an explicit explanation.
    JobSpec urgent = quick_spec(7);
    urgent.priority = 5;
    const SubmitOutcome shed_outcome = server.submit(urgent);
    ASSERT_TRUE(shed_outcome.accepted) << shed_outcome.error;
    bool saw_shed = false;
    for (const auto &snap : server.jobs()) {
        if (snap.state == JobState::Rejected) {
            saw_shed = true;
            EXPECT_NE(snap.detail.find("shed"), std::string::npos);
        }
    }
    EXPECT_TRUE(saw_shed);

    // Bounded memory: the server only ever holds accepted jobs.
    EXPECT_LE(server.jobs().size(), accepted.size() + 1);

    // Tear down briskly: cancel everything still pending/running.
    for (const auto &snap : server.jobs())
        if (!job_state_terminal(snap.state))
            server.cancel(snap.id);
    for (const auto &snap : server.jobs())
        wait_for(server, snap.id, is_terminal);

    JsonValue health;
    std::string error;
    ASSERT_TRUE(json_parse(server.health_json(), health, error));
    const JsonValue *jobs = health.get("jobs");
    ASSERT_NE(jobs, nullptr);
    EXPECT_GE(jobs->get("rejected")->as_int(0), 1);
    EXPECT_GE(jobs->get("shed")->as_int(0), 1);
}

TEST(Server, DeadlineExpiryCancelsNotFails)
{
    Server server(small_config(fresh_dir("deadline")));
    JobSpec spec = long_spec();
    spec.deadline_sec = 0.05; // far too tight for 64 candidates
    const SubmitOutcome outcome = server.submit(spec);
    ASSERT_TRUE(outcome.accepted);

    const auto snap = wait_for(server, outcome.id, is_terminal);
    EXPECT_EQ(snap.state, JobState::Cancelled);
    EXPECT_NE(snap.detail.find("deadline"), std::string::npos)
        << snap.detail;
    // The quota went back to the pool and no partial result leaked.
    EXPECT_EQ(server.threads_in_use(), 0);
    EXPECT_FALSE(server.result_json(outcome.id).has_value());
}

TEST(Server, CancelDuringCnrReleasesQuotaAndLeavesNoResult)
{
    const std::string dir = fresh_dir("cancel_cnr");
    Server server(small_config(dir));
    const SubmitOutcome outcome = server.submit(long_spec());
    ASSERT_TRUE(outcome.accepted);

    // Wait until the job is provably inside the CNR phase.
    wait_for(server, outcome.id, [](const JobStatusSnapshot &snap) {
        return snap.phase == "cnr" || job_state_terminal(snap.state);
    });
    ASSERT_FALSE(is_terminal(*server.status(outcome.id)))
        << "job finished before it could be cancelled";
    EXPECT_GT(server.threads_in_use(), 0);
    EXPECT_TRUE(server.cancel(outcome.id));

    const auto snap = wait_for(server, outcome.id, is_terminal);
    EXPECT_EQ(snap.state, JobState::Cancelled); // not Failed
    EXPECT_EQ(server.threads_in_use(), 0);
    // No partial results in the job store.
    EXPECT_FALSE(server.result_json(outcome.id).has_value());
    EXPECT_FALSE(std::filesystem::exists(dir + "/" + outcome.id +
                                         ".result.json"));

    // Cancelling a terminal job is a harmless no-op; unknown ids fail.
    EXPECT_TRUE(server.cancel(outcome.id));
    EXPECT_FALSE(server.cancel("job-999"));
}

TEST(Server, CancelQueuedJobNeverRuns)
{
    Server server(small_config(fresh_dir("cancel_queued")));
    const SubmitOutcome running = server.submit(long_spec());
    ASSERT_TRUE(running.accepted);
    const SubmitOutcome queued = server.submit(quick_spec());
    ASSERT_TRUE(queued.accepted);
    EXPECT_TRUE(server.cancel(queued.id));
    const auto snap = *server.status(queued.id);
    EXPECT_EQ(snap.state, JobState::Cancelled);
    server.cancel(running.id);
    wait_for(server, running.id, is_terminal);
}

TEST(Server, HardStopResumesBitIdentically)
{
    // Reference: the same job on an uninterrupted server.
    JobSpec spec = quick_spec(55);
    spec.candidates = 24;
    spec.scale = 0.1;
    std::string clean_hex, clean_circuit;
    {
        Server server(small_config(fresh_dir("crash_clean")));
        const SubmitOutcome outcome = server.submit(spec);
        ASSERT_TRUE(outcome.accepted);
        wait_for(server, outcome.id, is_terminal);
        const auto result = server.result_json(outcome.id);
        ASSERT_TRUE(result.has_value());
        clean_hex = json_field(*result, "best_score_hex");
        clean_circuit = json_field(*result, "circuit");
        ASSERT_FALSE(clean_hex.empty());
    }

    // Crash-equivalent stop mid-run, then recover on the same dir.
    const std::string dir = fresh_dir("crash_resume");
    {
        Server server(small_config(dir));
        const SubmitOutcome outcome = server.submit(spec);
        ASSERT_TRUE(outcome.accepted);
        // Let it make some journaled progress first.
        wait_for(server, outcome.id,
                 [](const JobStatusSnapshot &snap) {
                     return (snap.phase == "cnr" && snap.done >= 2) ||
                            job_state_terminal(snap.state);
                 });
        server.stop_hard();
        // Abandoned, not terminal: the manifest still says running.
        EXPECT_FALSE(job_state_terminal(
            server.status(outcome.id)->state));
    }
    {
        Server server(small_config(dir));
        const auto recovered = server.status("job-1");
        ASSERT_TRUE(recovered.has_value());
        EXPECT_TRUE(recovered->recovered);
        const auto snap = wait_for(server, "job-1", is_terminal);
        EXPECT_EQ(snap.state, JobState::Completed);
        const auto result = server.result_json("job-1");
        ASSERT_TRUE(result.has_value());
        // Bit-identical to the uninterrupted run.
        EXPECT_EQ(json_field(*result, "best_score_hex"), clean_hex);
        EXPECT_EQ(json_field(*result, "circuit"), clean_circuit);
    }
}

TEST(Server, TornManifestTailIsDroppedNotFatal)
{
    const std::string dir = fresh_dir("torn_manifest");
    {
        Server server(small_config(dir));
        const SubmitOutcome outcome = server.submit(quick_spec());
        ASSERT_TRUE(outcome.accepted);
        wait_for(server, outcome.id, is_terminal);
    }
    // Tear the manifest mid-append, as a crash during a write would.
    {
        std::ofstream out(dir + "/jobs.manifest",
                          std::ios::app | std::ios::binary);
        out << "state job-1 canc"; // no checksum, no newline
    }
    Server server(small_config(dir));
    const auto snap = server.status("job-1");
    ASSERT_TRUE(snap.has_value());
    // The torn record was dropped; the last durable state stands.
    EXPECT_EQ(snap->state, JobState::Completed);
}

TEST(Server, DrainLeavesQueuedJobsForNextStart)
{
    const std::string dir = fresh_dir("drain");
    {
        Server server(small_config(dir));
        ASSERT_TRUE(server.submit(long_spec()).accepted);
        ASSERT_TRUE(server.submit(quick_spec(77)).accepted);
        // No budget for the in-flight job: it is cancelled in-process
        // but stays resumable; the queued job is untouched.
        server.drain(0.0);
        EXPECT_TRUE(server.draining());
        EXPECT_FALSE(server.submit(quick_spec()).accepted);
    }
    Server server(small_config(dir));
    EXPECT_EQ(server.jobs().size(), 2u);
    for (const auto &snap : server.jobs()) {
        const auto done = wait_for(server, snap.id, is_terminal);
        EXPECT_EQ(done.state, JobState::Completed) << snap.id;
    }
}

// --- Protocol --------------------------------------------------------

TEST(Protocol, HandlesBadInputWithoutThrowing)
{
    Server server(small_config(fresh_dir("proto_bad")));
    for (const char *line :
         {"not json", "{}", R"({"op": 7})", R"({"op": "nope"})",
          R"({"op": "status"})", R"({"op": "submit"})",
          R"({"op": "cancel", "id": "job-9"})",
          R"({"op": "shutdown"})"}) {
        const RequestOutcome outcome =
            handle_request(server, line, /*allow_shutdown=*/false);
        EXPECT_EQ(outcome.action, RequestAction::Reply);
        JsonValue value;
        std::string error;
        ASSERT_TRUE(json_parse(outcome.response, value, error)) << line;
        EXPECT_FALSE(value.get("ok")->as_bool(true)) << line;
    }
}

TEST(Protocol, SubmitStatusResultLifecycle)
{
    Server server(small_config(fresh_dir("proto_life")));
    const RequestOutcome submitted = handle_request(
        server, make_submit_request(quick_spec()), false);
    JsonValue value;
    std::string error;
    ASSERT_TRUE(json_parse(submitted.response, value, error));
    ASSERT_TRUE(value.get("ok")->as_bool(false)) << submitted.response;
    const std::string id = value.get("id")->as_string();
    wait_for(server, id, is_terminal);

    const RequestOutcome status =
        handle_request(server, make_status_request(id), false);
    ASSERT_TRUE(json_parse(status.response, value, error));
    EXPECT_EQ(value.get("job")->get("state")->as_string(), "completed");

    const RequestOutcome result =
        handle_request(server, make_result_request(id), false);
    ASSERT_TRUE(json_parse(result.response, value, error));
    EXPECT_TRUE(value.get("ok")->as_bool(false));
    EXPECT_FALSE(value.get("result")
                     ->get("best_score_hex")
                     ->as_string()
                     .empty());

    const RequestOutcome health =
        handle_request(server, make_health_request(), false);
    ASSERT_TRUE(json_parse(health.response, value, error));
    EXPECT_EQ(value.get("health")->get("state")->as_string(),
              "serving");

    const RequestOutcome metrics =
        handle_request(server, make_metrics_request(), false);
    ASSERT_TRUE(json_parse(metrics.response, value, error));
    EXPECT_TRUE(value.get("ok")->as_bool(false));

    const RequestOutcome shutdown =
        handle_request(server, make_shutdown_request(2.5), true);
    EXPECT_EQ(shutdown.action, RequestAction::Shutdown);
    EXPECT_DOUBLE_EQ(shutdown.drain_sec, 2.5);
}

// --- TCP transport ---------------------------------------------------

TEST(Tcp, EndToEndOverLoopback)
{
    Server server(small_config(fresh_dir("tcp")));
    TcpConfig tcp_config;
    tcp_config.port = 0; // pick a free one
    TcpServer tcp(server, tcp_config);
    ASSERT_GT(tcp.port(), 0);
    std::thread accept_thread([&] { tcp.run(); });

    std::string error;
    Client client("127.0.0.1", tcp.port(), error);
    ASSERT_TRUE(client.connected()) << error;

    // Malformed line: explicit error, connection stays usable.
    std::string response;
    ASSERT_TRUE(client.request("this is not json", response, error));
    JsonValue value;
    ASSERT_TRUE(json_parse(response, value, error));
    EXPECT_FALSE(value.get("ok")->as_bool(true));

    ASSERT_TRUE(client.request(make_submit_request(quick_spec()),
                               response, error));
    ASSERT_TRUE(json_parse(response, value, error));
    ASSERT_TRUE(value.get("ok")->as_bool(false)) << response;
    const std::string id = value.get("id")->as_string();

    // Watch streams status lines until the job is terminal.
    ASSERT_TRUE(client.send_line(make_watch_request(id), error));
    ASSERT_TRUE(client.read_line(response, error, 60.0)); // ack
    bool saw_terminal = false;
    while (!saw_terminal &&
           client.read_line(response, error, 60.0)) {
        ASSERT_TRUE(json_parse(response, value, error)) << response;
        const JsonValue *state = value.get("state");
        ASSERT_NE(state, nullptr);
        const auto parsed = job_state_from_name(state->as_string());
        ASSERT_TRUE(parsed.has_value());
        saw_terminal = job_state_terminal(*parsed);
    }
    EXPECT_TRUE(saw_terminal) << error;

    // Shutdown is rejected unless the transport allows it.
    ASSERT_TRUE(
        client.request(make_shutdown_request(1.0), response, error));
    ASSERT_TRUE(json_parse(response, value, error));
    EXPECT_FALSE(value.get("ok")->as_bool(true));

    ASSERT_TRUE(
        client.request(make_health_request(), response, error));
    ASSERT_TRUE(json_parse(response, value, error));
    EXPECT_TRUE(value.get("ok")->as_bool(false));

    tcp.stop();
    accept_thread.join();
}

TEST(Tcp, StopUnblocksIdleConnections)
{
    // Regression: stop() used to only set a flag, so a connection
    // thread blocked in recv() on an idle (or watch-finished) client
    // kept the destructor's join waiting forever after SIGTERM.
    Server server(small_config(fresh_dir("tcp_idle")));
    TcpConfig tcp_config;
    auto tcp = std::make_unique<TcpServer>(server, tcp_config);
    std::thread accept_thread([&] { tcp->run(); });

    std::string error, response;
    Client idle("127.0.0.1", tcp->port(), error);
    ASSERT_TRUE(idle.connected()) << error;
    // One full exchange guarantees the connection thread exists and is
    // back in recv() waiting for a next line that never comes.
    ASSERT_TRUE(idle.request(make_health_request(), response, error));

    // With the client still connected and silent, stop + destroy must
    // finish promptly: stop() half-closes the socket so the blocked
    // recv() returns instead of pinning the join.
    const auto start = std::chrono::steady_clock::now();
    tcp->stop();
    accept_thread.join();
    tcp.reset();
    const double took =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_LT(took, 10.0);
}

TEST(Tcp, ClientReadTimeoutCoversPartialLines)
{
    // Regression: read_line applied its timeout only to the first
    // poll(); a peer that sent half a line and then stalled hung the
    // client in blocking recv() past the requested deadline.
    const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(listen_fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof addr),
              0);
    ASSERT_EQ(::listen(listen_fd, 1), 0);
    socklen_t len = sizeof addr;
    ASSERT_EQ(::getsockname(listen_fd,
                            reinterpret_cast<sockaddr *>(&addr), &len),
              0);

    std::string error;
    Client client("127.0.0.1", ntohs(addr.sin_port), error);
    ASSERT_TRUE(client.connected()) << error;
    const int conn_fd = ::accept(listen_fd, nullptr, nullptr);
    ASSERT_GE(conn_fd, 0);
    // Half a line — no terminator — then silence.
    ASSERT_EQ(::send(conn_fd, "{\"ok\":tr", 8, 0), 8);

    std::string line;
    const auto start = std::chrono::steady_clock::now();
    EXPECT_FALSE(client.read_line(line, error, 0.5));
    const double took =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_GE(took, 0.4);
    EXPECT_LT(took, 10.0);
    EXPECT_NE(error.find("timed out"), std::string::npos) << error;
    ::close(conn_fd);
    ::close(listen_fd);
}

// --- Telemetry plane -------------------------------------------------

TEST(Telemetry, EventsVerbReportsJobLifecycle)
{
    Server server(small_config(fresh_dir("tele_events")));
    const SubmitOutcome outcome = server.submit(quick_spec());
    ASSERT_TRUE(outcome.accepted) << outcome.error;
    wait_for(server, outcome.id, is_terminal);

    const RequestOutcome reply =
        handle_request(server, make_events_request(0, 64), false);
    JsonValue value;
    std::string error;
    ASSERT_TRUE(json_parse(reply.response, value, error))
        << reply.response;
    ASSERT_TRUE(value.get("ok")->as_bool(false));
    const JsonValue *doc = value.get("events");
    ASSERT_NE(doc, nullptr);
    const std::uint64_t last_seq = doc->get("last_seq")->as_uint(0);
    EXPECT_GE(last_seq, 3u); // admitted, started, finished

    std::vector<std::string> kinds;
    for (const JsonValue &event : doc->get("events")->items) {
        kinds.push_back(event.get("kind")->as_string());
        if (const JsonValue *id = event.get("id")) {
            EXPECT_EQ(id->as_string(), outcome.id);
        }
    }
    const auto index_of = [&](const char *kind) {
        for (std::size_t i = 0; i < kinds.size(); ++i)
            if (kinds[i] == kind)
                return static_cast<std::ptrdiff_t>(i);
        return static_cast<std::ptrdiff_t>(-1);
    };
    const std::ptrdiff_t admitted = index_of("job.admitted");
    const std::ptrdiff_t started = index_of("job.started");
    const std::ptrdiff_t finished = index_of("job.finished");
    EXPECT_GE(admitted, 0);
    EXPECT_LT(admitted, started);
    EXPECT_LT(started, finished);

    // Cursor paging: everything before last_seq is filtered out.
    const RequestOutcome tail = handle_request(
        server, make_events_request(last_seq, 64), false);
    ASSERT_TRUE(json_parse(tail.response, value, error));
    EXPECT_TRUE(value.get("events")->get("events")->items.empty());
}

TEST(Telemetry, TraceArtifactIsWrittenAndLinked)
{
    Server server(small_config(fresh_dir("tele_trace")));
    const SubmitOutcome outcome = server.submit(quick_spec());
    ASSERT_TRUE(outcome.accepted) << outcome.error;
    const auto snap = wait_for(server, outcome.id, is_terminal);
    ASSERT_EQ(snap.state, JobState::Completed);

    // The job's trace artifact exists and is a Chrome trace with the
    // queue-wait and run spans.
    ASSERT_FALSE(snap.trace_path.empty());
    ASSERT_TRUE(std::filesystem::exists(snap.trace_path))
        << snap.trace_path;
    std::ifstream in(snap.trace_path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string trace = buf.str();
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.find("queue.wait"), std::string::npos);
    EXPECT_NE(trace.find("job.run"), std::string::npos);

    // Both the status line and the result document link it.
    EXPECT_NE(status_json(snap).find("\"trace\""), std::string::npos);
    const auto result = server.result_json(outcome.id);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(json_field(*result, "trace"), snap.trace_path);
}

TEST(Telemetry, HttpHandleServesMetricsHealthzAnd404)
{
    ServerConfig config = small_config(fresh_dir("tele_http"));
    config.metrics = true;
    Server server(config);
    const SubmitOutcome outcome = server.submit(quick_spec());
    ASSERT_TRUE(outcome.accepted) << outcome.error;
    wait_for(server, outcome.id, is_terminal);

    HttpConfig http_config; // port 0: ephemeral
    MetricsHttpServer http(server, http_config);
    EXPECT_GT(http.port(), 0);

    std::string content_type;
    const std::string metrics = http.handle("/metrics", content_type);
    EXPECT_NE(content_type.find("text/plain"), std::string::npos);
#ifndef ELV_OBS_DISABLED
    // Series content needs a live registry; the -DELV_OBS=OFF build
    // still serves the endpoint (empty scrape), checked above.
    EXPECT_NE(metrics.find("elv_server_queue_depth"),
              std::string::npos);
    EXPECT_NE(metrics.find("elv_server_job_seconds_bucket"),
              std::string::npos);
    EXPECT_NE(metrics.find("elv_server_job_seconds_q50"),
              std::string::npos);
#endif

    const std::string health = http.handle("/healthz", content_type);
    EXPECT_EQ(content_type, "application/json");
    EXPECT_NE(health.find("serving"), std::string::npos);

    std::string none_type = "sentinel";
    EXPECT_TRUE(http.handle("/no-such", none_type).empty());
    EXPECT_TRUE(none_type.empty());
}

} // namespace
