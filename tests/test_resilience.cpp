/**
 * @file
 * Resilience acceptance tests for the search pipeline (ISSUE acceptance
 * criteria): a fault-injected run that survives via retries returns the
 * same best circuit as the fault-free run; a crash-interrupted search
 * resumes from its journal to a bit-identical ranking; an always-failing
 * primary backend degrades down the ladder instead of aborting, with
 * every affected candidate flagged.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "circuit/serialize.hpp"
#include "common/logging.hpp"
#include "core/checkpoint.hpp"
#include "core/search.hpp"
#include "exec/executor.hpp"
#include "qml/synthetic.hpp"

namespace {

using namespace elv;
using namespace elv::core;

/** Small search configuration (seconds, not minutes, per run). */
ElivagarConfig
small_search_config(int num_features)
{
    ElivagarConfig config;
    config.num_candidates = 10;
    config.candidate.num_qubits = 4;
    config.candidate.num_params = 12;
    config.candidate.num_embeds = 4;
    config.candidate.num_meas = 1;
    config.candidate.num_features = num_features;
    config.cnr.num_replicas = 4;
    config.repcap.samples_per_class = 4;
    config.repcap.param_inits = 2;
    config.seed = 23;
    return config;
}

/** Fresh journal path under the test temp dir. */
std::string
journal_path(const std::string &name)
{
    const std::string path = ::testing::TempDir() + "elv_" + name +
                             ".journal";
    std::remove(path.c_str());
    return path;
}

void
expect_identical_results(const SearchResult &a, const SearchResult &b)
{
    EXPECT_EQ(circ::to_text(a.best_circuit),
              circ::to_text(b.best_circuit));
    EXPECT_EQ(a.best_score, b.best_score); // bit-exact
    EXPECT_EQ(a.survivors, b.survivors);
    EXPECT_EQ(a.cnr_executions, b.cnr_executions);
    EXPECT_EQ(a.repcap_executions, b.repcap_executions);
    ASSERT_EQ(a.candidates.size(), b.candidates.size());
    for (std::size_t n = 0; n < a.candidates.size(); ++n) {
        EXPECT_EQ(a.candidates[n].cnr, b.candidates[n].cnr) << n;
        EXPECT_EQ(a.candidates[n].repcap, b.candidates[n].repcap) << n;
        EXPECT_EQ(a.candidates[n].score, b.candidates[n].score) << n;
        EXPECT_EQ(a.candidates[n].rejected_by_cnr,
                  b.candidates[n].rejected_by_cnr)
            << n;
    }
}

TEST(Resilience, FaultInjectedRunMatchesFaultFreeRun)
{
    const qml::Benchmark bench = qml::make_benchmark("moons", 7, 0.1);
    const dev::Device device = dev::make_device("ibm_lagos");
    const ElivagarConfig config = small_search_config(bench.spec.dim);

    // Reference: plain execution, no resilience layer at all.
    const SearchResult clean =
        elivagar_search(device, bench.train, config);

    // Same search under ~20% injected transient faults, with enough
    // attempts that no call exhausts its rung.
    ElivagarConfig faulty_config = config;
    faulty_config.resilience.enabled = true;
    faulty_config.resilience.retry.max_attempts = 10;
    faulty_config.resilience.faults.transient_rate = 0.15;
    faulty_config.resilience.faults.garbage_rate = 0.05;
    const SearchResult faulty =
        elivagar_search(device, bench.train, faulty_config);

    expect_identical_results(clean, faulty);
    EXPECT_EQ(faulty.degraded_candidates, 0);
    EXPECT_GT(faulty.fault_counters.total(), 0u);
    EXPECT_EQ(faulty.exec_counters.failures,
              faulty.fault_counters.transient +
                  faulty.fault_counters.garbage);
    EXPECT_GT(faulty.exec_counters.retries, 0u);
    EXPECT_GT(faulty.simulated_wait_ms, 0.0);
    // The clean run reports no resilience activity.
    EXPECT_EQ(clean.exec_counters.calls, 0u);
    EXPECT_EQ(clean.fault_counters.total(), 0u);
}

TEST(Resilience, CrashedSearchResumesToIdenticalRanking)
{
    const qml::Benchmark bench = qml::make_benchmark("moons", 8, 0.1);
    const dev::Device device = dev::make_device("ibm_lagos");
    const ElivagarConfig config = small_search_config(bench.spec.dim);

    // Uninterrupted reference run (no journal, no faults).
    ElivagarConfig reference_config = config;
    reference_config.resilience.enabled = true;
    const SearchResult reference =
        elivagar_search(device, bench.train, reference_config);

    // Crash mid-search: the injected CrashError fires once 10 replica
    // executions succeeded — 2.5 candidates into the CNR stage.
    const std::string path = journal_path("crash_resume");
    ElivagarConfig crash_config = config;
    crash_config.resilience.enabled = true;
    crash_config.resilience.faults.crash_after = 10;
    crash_config.resilience.checkpoint_path = path;
    EXPECT_THROW(elivagar_search(device, bench.train, crash_config),
                 exec::CrashError);

    // The journal holds the completed prefix.
    {
        SearchJournal journal(path, config_fingerprint(config));
        EXPECT_TRUE(journal.load());
        ASSERT_NE(journal.entry(0), nullptr);
        EXPECT_TRUE(journal.entry(0)->has_cnr);
        EXPECT_TRUE(journal.entry(1)->has_cnr);
        EXPECT_FALSE(journal.entry(2)->has_cnr);
    }

    // Resume with the faults disabled (the fingerprint ignores fault
    // and retry knobs, so the journal is accepted).
    ElivagarConfig resume_config = config;
    resume_config.resilience.enabled = true;
    resume_config.resilience.checkpoint_path = path;
    const SearchResult resumed =
        elivagar_search(device, bench.train, resume_config);

    EXPECT_TRUE(resumed.resumed);
    expect_identical_results(reference, resumed);
    std::remove(path.c_str());
}

TEST(Resilience, CompletedJournalReplaysWithoutReexecution)
{
    const qml::Benchmark bench = qml::make_benchmark("moons", 9, 0.1);
    const dev::Device device = dev::make_device("ibm_lagos");
    ElivagarConfig config = small_search_config(bench.spec.dim);
    config.resilience.enabled = true;
    config.resilience.checkpoint_path = journal_path("full_replay");

    const SearchResult first =
        elivagar_search(device, bench.train, config);
    EXPECT_FALSE(first.resumed);

    const SearchResult second =
        elivagar_search(device, bench.train, config);
    EXPECT_TRUE(second.resumed);
    expect_identical_results(first, second);
    // Everything came from the journal: the executor serviced no calls.
    EXPECT_EQ(second.exec_counters.calls, 0u);
    std::remove(config.resilience.checkpoint_path.c_str());
}

TEST(Resilience, TornFinalRecordToleratedAtEveryByteOffset)
{
    const qml::Benchmark bench = qml::make_benchmark("moons", 14, 0.1);
    const dev::Device device = dev::make_device("ibm_lagos");
    ElivagarConfig config = small_search_config(bench.spec.dim);
    config.resilience.enabled = true;
    config.resilience.checkpoint_path = journal_path("torn_reference");

    const SearchResult reference =
        elivagar_search(device, bench.train, config);
    EXPECT_FALSE(reference.resumed);

    // The complete journal, byte for byte.
    std::string blob;
    {
        std::ifstream in(config.resilience.checkpoint_path,
                         std::ios::binary);
        ASSERT_TRUE(in.good());
        std::ostringstream text;
        text << in.rdbuf();
        blob = text.str();
    }
    std::remove(config.resilience.checkpoint_path.c_str());
    ASSERT_FALSE(blob.empty());
    ASSERT_EQ(blob.back(), '\n');

    // Simulate a crash torn mid-append at EVERY byte offset of the
    // final record: from "record entirely missing" through "all bytes
    // but the trailing newline". Each torn journal must load (warning,
    // not abort), drop exactly the damaged record, and resume to the
    // bit-identical result.
    const std::size_t last_start =
        blob.rfind('\n', blob.size() - 2) + 1;
    const std::string torn_path = journal_path("torn_case");
    ElivagarConfig resume_config = config;
    resume_config.resilience.checkpoint_path = torn_path;
    for (std::size_t cut = last_start; cut < blob.size(); ++cut) {
        {
            std::ofstream out(torn_path,
                              std::ios::binary | std::ios::trunc);
            out.write(blob.data(),
                      static_cast<std::streamsize>(cut));
        }
        const SearchResult resumed =
            elivagar_search(device, bench.train, resume_config);
        EXPECT_TRUE(resumed.resumed) << "cut at byte " << cut;
        expect_identical_results(reference, resumed);
        std::remove(torn_path.c_str());
    }

    // A record torn anywhere but the tail is real corruption, not a
    // crash artifact, and must still abort loudly.
    {
        const std::size_t prev_start =
            blob.rfind('\n', last_start - 2) + 1;
        std::string interior = blob.substr(0, prev_start + 5);
        // Re-attach the intact final record after the damaged one.
        interior += "\n" + blob.substr(last_start);
        std::ofstream out(torn_path,
                          std::ios::binary | std::ios::trunc);
        out.write(interior.data(),
                  static_cast<std::streamsize>(interior.size()));
        out.close();
        EXPECT_THROW(elivagar_search(device, bench.train, resume_config),
                     UsageError);
        std::remove(torn_path.c_str());
    }
}

TEST(Resilience, TruncatedNumericFieldFailsChecksumNotSilently)
{
    // Regression for the nastiest torn-write shape: a truncated line
    // whose shortened fields still lex as valid numbers ("15" torn to
    // "1"). The per-record checksum must catch it even when the torn
    // prefix happens to parse.
    const qml::Benchmark bench = qml::make_benchmark("moons", 15, 0.1);
    const dev::Device device = dev::make_device("ibm_lagos");
    ElivagarConfig config = small_search_config(bench.spec.dim);
    config.resilience.enabled = true;
    config.resilience.checkpoint_path = journal_path("torn_numeric");

    const SearchResult reference =
        elivagar_search(device, bench.train, config);

    std::string blob;
    {
        std::ifstream in(config.resilience.checkpoint_path,
                         std::ios::binary);
        std::ostringstream text;
        text << in.rdbuf();
        blob = text.str();
    }
    // Drop the checksum suffix AND part of the last field, then
    // re-terminate the line: without checksums this parsed "cleanly".
    const std::size_t last_start =
        blob.rfind('\n', blob.size() - 2) + 1;
    std::string last = blob.substr(
        last_start, blob.size() - last_start - 1);
    const std::size_t tilde = last.rfind(" ~");
    ASSERT_NE(tilde, std::string::npos);
    last.resize(tilde > 2 ? tilde - 2 : tilde);
    const std::string doctored =
        blob.substr(0, last_start) + last + "\n";
    {
        std::ofstream out(config.resilience.checkpoint_path,
                          std::ios::binary | std::ios::trunc);
        out.write(doctored.data(),
                  static_cast<std::streamsize>(doctored.size()));
    }

    const SearchResult resumed =
        elivagar_search(device, bench.train, config);
    EXPECT_TRUE(resumed.resumed);
    expect_identical_results(reference, resumed);
    std::remove(config.resilience.checkpoint_path.c_str());
}

TEST(Resilience, JournalFromDifferentConfigIsRejected)
{
    const qml::Benchmark bench = qml::make_benchmark("moons", 10, 0.1);
    const dev::Device device = dev::make_device("ibm_lagos");
    ElivagarConfig config = small_search_config(bench.spec.dim);
    config.resilience.checkpoint_path = journal_path("fingerprint");
    elivagar_search(device, bench.train, config);

    ElivagarConfig other = config;
    other.seed = config.seed + 1; // different search, same journal
    EXPECT_THROW(elivagar_search(device, bench.train, other),
                 UsageError);
    std::remove(config.resilience.checkpoint_path.c_str());
}

TEST(Resilience, FingerprintMismatchNamesBothPrintsAndLikelyCulprit)
{
    // The refusing-to-resume message must carry enough to debug it
    // from a log line alone: the stored fingerprint, the expected
    // one, and — when a single-field change explains the difference —
    // which knob moved. Precision flips are the realistic culprit.
    const qml::Benchmark bench = qml::make_benchmark("moons", 10, 0.1);
    const dev::Device device = dev::make_device("ibm_lagos");
    ElivagarConfig config = small_search_config(bench.spec.dim);
    config.resilience.checkpoint_path = journal_path("fp_hint");
    elivagar_search(device, bench.train, config);
    const std::uint64_t stored = config_fingerprint(config);

    ElivagarConfig flipped = config;
    flipped.cnr.precision = sim::Precision::Float32Proxy;
    flipped.repcap.precision = sim::Precision::Float32Proxy;
    try {
        elivagar_search(device, bench.train, flipped);
        FAIL() << "expected the mismatched journal to be refused";
    } catch (const UsageError &e) {
        const std::string what = e.what();
        char stored_hex[32];
        std::snprintf(stored_hex, sizeof(stored_hex), "%016llx",
                      static_cast<unsigned long long>(stored));
        char expected_hex[32];
        std::snprintf(expected_hex, sizeof(expected_hex), "%016llx",
                      static_cast<unsigned long long>(
                          config_fingerprint(flipped)));
        EXPECT_NE(what.find(stored_hex), std::string::npos) << what;
        EXPECT_NE(what.find(expected_hex), std::string::npos) << what;
        EXPECT_NE(what.find("precision"), std::string::npos) << what;
    }
    std::remove(config.resilience.checkpoint_path.c_str());
}

TEST(Resilience, FingerprintHintCoversSingleFieldMutations)
{
    const qml::Benchmark bench = qml::make_benchmark("moons", 10, 0.1);
    ElivagarConfig config = small_search_config(bench.spec.dim);

    // Joint precision flip (the CLI's --precision).
    ElivagarConfig mutated = config;
    mutated.cnr.precision = sim::Precision::Float32Proxy;
    mutated.repcap.precision = sim::Precision::Float32Proxy;
    std::string hint = fingerprint_mismatch_hint(
        config, config_fingerprint(mutated));
    EXPECT_NE(hint.find("precision"), std::string::npos) << hint;

    // use_cnr toggle (the RepCap-only ablation).
    mutated = config;
    mutated.use_cnr = !mutated.use_cnr;
    hint = fingerprint_mismatch_hint(config,
                                     config_fingerprint(mutated));
    EXPECT_NE(hint.find("use_cnr"), std::string::npos) << hint;

    // A multi-field change has no single culprit: no guess offered.
    mutated = config;
    mutated.seed += 1;
    mutated.num_candidates += 1;
    EXPECT_EQ(fingerprint_mismatch_hint(config,
                                        config_fingerprint(mutated)),
              "");
}

TEST(Resilience, OldJournalVersionDiscardedNotFatal)
{
    // Regression: a well-formed journal of another format version used
    // to be mistaken for a torn header and, with records present,
    // aborted the resume with a misleading "missing header" error. A
    // stale version means the record format may differ: discard the
    // journal and run the search fresh.
    const std::string path = journal_path("old_version");
    {
        std::ofstream out(path, std::ios::binary);
        out << "elv-search-journal 1\n";
        out << "fingerprint 0123456789abcdef\n";
        out << record_with_checksum("cnr 0 0x1p+0 4 0 0") << "\n";
    }
    SearchJournal journal(path, 42);
    EXPECT_FALSE(journal.load());
    // The stale file was cleared, so the fresh run starts clean.
    EXPECT_EQ(std::filesystem::file_size(path), 0u);
    std::remove(path.c_str());
}

TEST(Resilience, AlwaysFailingDensityDegradesToStabilizer)
{
    const qml::Benchmark bench = qml::make_benchmark("moons", 11, 0.1);
    const dev::Device device = dev::make_device("ibm_lagos");
    ElivagarConfig config = small_search_config(bench.spec.dim);
    config.resilience.enabled = true;
    config.resilience.retry.max_attempts = 2;
    config.resilience.faults.transient_rate = 1.0;
    config.resilience.faults.target = exec::FaultTarget::Density;

    const SearchResult result =
        elivagar_search(device, bench.train, config);

    // Every candidate's CNR was serviced by the stabilizer fallback.
    EXPECT_EQ(result.degraded_candidates, config.num_candidates);
    for (const auto &record : result.candidates) {
        EXPECT_TRUE(record.degraded);
        EXPECT_GT(record.retries, 0u);
    }
    EXPECT_GE(result.survivors, 1);
    EXPECT_GT(result.best_score, 0.0);

    // Counter bookkeeping matches the injected failures exactly: per
    // call, 2 failed density attempts (1 retry) then 1 stabilizer
    // success.
    const std::uint64_t calls = result.exec_counters.calls;
    EXPECT_EQ(calls, result.cnr_executions);
    EXPECT_EQ(result.exec_counters.failures, 2 * calls);
    EXPECT_EQ(result.exec_counters.retries, calls);
    EXPECT_EQ(result.exec_counters.rungs_exhausted, calls);
    EXPECT_EQ(result.exec_counters.degraded_calls, calls);
    EXPECT_EQ(result.fault_counters.transient, 2 * calls);
    EXPECT_GT(result.simulated_wait_ms, 0.0);
}

TEST(Resilience, CalibrationDriftIsCountedAndContained)
{
    const qml::Benchmark bench = qml::make_benchmark("moons", 12, 0.1);
    const dev::Device device = dev::make_device("ibm_lagos");
    const std::vector<double> original_readout = device.readout_error;

    ElivagarConfig config = small_search_config(bench.spec.dim);
    config.resilience.enabled = true;
    config.resilience.faults.drift_rate = 0.3;

    const SearchResult result =
        elivagar_search(device, bench.train, config);
    EXPECT_GT(result.fault_counters.drifts, 0u);
    EXPECT_GE(result.survivors, 1);
    // Drift perturbed the executor's private snapshot, never the
    // caller's device.
    EXPECT_EQ(device.readout_error, original_readout);
}

TEST(Resilience, HexFloatRoundTripIsBitExact)
{
    for (const double v :
         {0.0, 1.0, 1.0 / 3.0, 0.8721350128375, 1e-300, -0.25}) {
        EXPECT_EQ(double_from_hex(double_to_hex(v)), v);
    }
    EXPECT_THROW(double_from_hex("not-a-number"), UsageError);
}

} // namespace
