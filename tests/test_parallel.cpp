/**
 * @file
 * Tests for the parallel search engine (ISSUE acceptance criteria):
 * thread-pool correctness under contention, bit-identical search
 * results for any thread count (including under fault injection and
 * crash/resume), and equivalence of the specialized CX/CZ/SWAP and
 * diagonal 1-qubit gate kernels with the generic dense kernels on both
 * simulators.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/serialize.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "core/checkpoint.hpp"
#include "core/search.hpp"
#include "exec/executor.hpp"
#include "parallel/thread_pool.hpp"
#include "qml/synthetic.hpp"
#include "sim/density_matrix.hpp"
#include "sim/statevector.hpp"

namespace {

using namespace elv;
using namespace elv::core;

// ---------------------------------------------------------------------
// Thread pool
// ---------------------------------------------------------------------

TEST(ThreadPool, HardwareThreadsIsPositive)
{
    EXPECT_GE(par::ThreadPool::hardware_threads(), 1);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnceUnderContention)
{
    par::ThreadPool pool(8);
    EXPECT_EQ(pool.size(), 8);

    const std::size_t n = 20000;
    std::vector<std::atomic<int>> hits(n);
    std::atomic<std::size_t> total{0};
    pool.parallel_for(n, [&](std::size_t i) {
        hits[i].fetch_add(1);
        total.fetch_add(1);
    });
    EXPECT_EQ(total.load(), n);
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, SerialPoolRunsInlineOnCallingThread)
{
    par::ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1);
    const auto caller = std::this_thread::get_id();
    std::vector<std::size_t> order;
    pool.parallel_for(64, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i); // safe: inline, single thread
    });
    ASSERT_EQ(order.size(), 64u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i); // serial path preserves index order
}

TEST(ThreadPool, ParallelMapReturnsResultsInIndexOrder)
{
    par::ThreadPool pool(4);
    const auto out = pool.parallel_map<int>(
        257, [](std::size_t i) { return static_cast<int>(i * i); });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    par::ThreadPool pool(4);
    std::atomic<std::size_t> total{0};
    pool.parallel_for(16, [&](std::size_t) {
        pool.parallel_for(16,
                          [&](std::size_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 16u * 16u);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolStaysUsable)
{
    par::ThreadPool pool(4);
    EXPECT_THROW(pool.parallel_for(
                     1000,
                     [&](std::size_t i) {
                         if (i == 37)
                             throw std::runtime_error("task 37");
                     }),
                 std::runtime_error);

    // The pool must survive a failed loop and run the next one fully.
    std::atomic<std::size_t> total{0};
    pool.parallel_for(1000, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 1000u);
}

// ---------------------------------------------------------------------
// Parallel search determinism
// ---------------------------------------------------------------------

/** Small search configuration (seconds, not minutes, per run). */
ElivagarConfig
small_search_config(int num_features, std::uint64_t seed)
{
    ElivagarConfig config;
    config.num_candidates = 12;
    config.candidate.num_qubits = 4;
    config.candidate.num_params = 12;
    config.candidate.num_embeds = 4;
    config.candidate.num_meas = 1;
    config.candidate.num_features = num_features;
    config.cnr.num_replicas = 4;
    config.repcap.samples_per_class = 4;
    config.repcap.param_inits = 2;
    config.seed = seed;
    return config;
}

void
expect_identical_results(const SearchResult &a, const SearchResult &b)
{
    EXPECT_EQ(circ::to_text(a.best_circuit),
              circ::to_text(b.best_circuit));
    EXPECT_EQ(a.best_score, b.best_score); // bit-exact
    EXPECT_EQ(a.survivors, b.survivors);
    EXPECT_EQ(a.cnr_executions, b.cnr_executions);
    EXPECT_EQ(a.repcap_executions, b.repcap_executions);
    ASSERT_EQ(a.candidates.size(), b.candidates.size());
    for (std::size_t n = 0; n < a.candidates.size(); ++n) {
        EXPECT_EQ(circ::to_text(a.candidates[n].circuit),
                  circ::to_text(b.candidates[n].circuit))
            << n;
        EXPECT_EQ(a.candidates[n].cnr, b.candidates[n].cnr) << n;
        EXPECT_EQ(a.candidates[n].repcap, b.candidates[n].repcap) << n;
        EXPECT_EQ(a.candidates[n].score, b.candidates[n].score) << n;
        EXPECT_EQ(a.candidates[n].rejected_by_cnr,
                  b.candidates[n].rejected_by_cnr)
            << n;
    }
}

TEST(ParallelSearch, EightThreadsMatchSerialAcrossSeeds)
{
    const qml::Benchmark bench = qml::make_benchmark("moons", 7, 0.1);
    const dev::Device device = dev::make_device("ibm_lagos");

    for (std::uint64_t seed : {23ULL, 101ULL}) {
        ElivagarConfig serial =
            small_search_config(bench.spec.dim, seed);
        serial.threads = 1;
        ElivagarConfig parallel = serial;
        parallel.threads = 8;

        const SearchResult a =
            elivagar_search(device, bench.train, serial);
        const SearchResult b =
            elivagar_search(device, bench.train, parallel);
        expect_identical_results(a, b);
    }
}

TEST(ParallelSearch, FaultInjectedRunIsThreadCountInvariant)
{
    const qml::Benchmark bench = qml::make_benchmark("moons", 7, 0.1);
    const dev::Device device = dev::make_device("ibm_lagos");

    ElivagarConfig serial = small_search_config(bench.spec.dim, 23);
    serial.threads = 1;
    serial.resilience.enabled = true;
    serial.resilience.retry.max_attempts = 10;
    serial.resilience.faults.transient_rate = 0.15;
    serial.resilience.faults.garbage_rate = 0.05;
    ElivagarConfig parallel = serial;
    parallel.threads = 8;

    const SearchResult a = elivagar_search(device, bench.train, serial);
    const SearchResult b =
        elivagar_search(device, bench.train, parallel);
    expect_identical_results(a, b);
    // Retry bookkeeping is per-candidate deterministic too.
    EXPECT_EQ(a.exec_counters.calls, b.exec_counters.calls);
    EXPECT_EQ(a.exec_counters.retries, b.exec_counters.retries);
    EXPECT_EQ(a.fault_counters.total(), b.fault_counters.total());
    EXPECT_GT(b.fault_counters.total(), 0u);
}

TEST(ParallelSearch, CrashResumeAtEightThreadsMatchesSerialReference)
{
    const qml::Benchmark bench = qml::make_benchmark("moons", 8, 0.1);
    const dev::Device device = dev::make_device("ibm_lagos");
    const std::string path = ::testing::TempDir() +
                             "elv_parallel_crash.journal";
    std::remove(path.c_str());

    // Serial fault-free reference.
    ElivagarConfig reference_config =
        small_search_config(bench.spec.dim, 23);
    reference_config.threads = 1;
    reference_config.resilience.enabled = true;
    const SearchResult reference =
        elivagar_search(device, bench.train, reference_config);

    // Crash mid-search while running on 8 threads (the crash clock
    // counts successes across all workers), then resume on 8 threads.
    ElivagarConfig crash_config = reference_config;
    crash_config.threads = 8;
    crash_config.resilience.faults.crash_after = 10;
    crash_config.resilience.checkpoint_path = path;
    EXPECT_THROW(elivagar_search(device, bench.train, crash_config),
                 exec::CrashError);

    ElivagarConfig resume_config = reference_config;
    resume_config.threads = 8;
    resume_config.resilience.checkpoint_path = path;
    const SearchResult resumed =
        elivagar_search(device, bench.train, resume_config);

    EXPECT_TRUE(resumed.resumed);
    expect_identical_results(reference, resumed);
    std::remove(path.c_str());
}

TEST(ParallelSearch, FingerprintIgnoresThreadCount)
{
    // A journal written at one thread count must resume at another.
    ElivagarConfig a = small_search_config(2, 23);
    a.threads = 1;
    ElivagarConfig b = a;
    b.threads = 8;
    EXPECT_EQ(config_fingerprint(a), config_fingerprint(b));
}

// ---------------------------------------------------------------------
// Specialized gate kernels
// ---------------------------------------------------------------------

/** Deterministic random normalized state on `num_qubits` qubits. */
sim::StateVector
random_state(int num_qubits, std::uint64_t seed)
{
    sim::StateVector psi(num_qubits);
    Rng rng(seed);
    for (auto &a : psi.amps())
        a = sim::Amp(rng.normal(), rng.normal());
    double norm = 0.0;
    for (const auto &a : psi.amps())
        norm += std::norm(a);
    for (auto &a : psi.amps())
        a /= std::sqrt(norm);
    return psi;
}

double
max_amp_diff(const sim::StateVector &a, const sim::StateVector &b)
{
    double worst = 0.0;
    for (std::size_t i = 0; i < a.dim(); ++i)
        worst = std::max(worst, std::abs(a.amp(i) - b.amp(i)));
    return worst;
}

/** 5-qubit circuit exercising every gate kind (except AmpEmbed). */
circ::Circuit
every_gate_circuit()
{
    circ::Circuit c(5);
    c.add_gate(circ::GateKind::H, {0});
    c.add_gate(circ::GateKind::H, {2});
    c.add_gate(circ::GateKind::H, {4});
    c.add_variational(circ::GateKind::RX, {1});
    c.add_variational(circ::GateKind::RY, {2});
    c.add_variational(circ::GateKind::RZ, {3});
    c.add_variational(circ::GateKind::U3, {0});
    c.add_gate(circ::GateKind::S, {1});
    c.add_gate(circ::GateKind::Sdg, {2});
    c.add_gate(circ::GateKind::X, {3});
    c.add_gate(circ::GateKind::Y, {4});
    c.add_gate(circ::GateKind::Z, {0});
    c.add_gate(circ::GateKind::CX, {0, 3});
    c.add_gate(circ::GateKind::CX, {4, 1});
    c.add_gate(circ::GateKind::CZ, {1, 2});
    c.add_gate(circ::GateKind::CZ, {3, 0});
    c.add_gate(circ::GateKind::SWAP, {2, 4});
    c.add_variational(circ::GateKind::CRY, {0, 2});
    c.add_variational(circ::GateKind::RZ, {4});
    c.set_measured({0, 1, 2, 3, 4});
    return c;
}

std::vector<double>
circuit_params(const circ::Circuit &c, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> params(
        static_cast<std::size_t>(c.num_params()));
    for (auto &p : params)
        p = rng.uniform(-3.0, 3.0);
    return params;
}

TEST(Kernels, DirectKernelsMatchGenericMatmulOnRandomStates)
{
    const std::array<double, 3> zeros = {0.0, 0.0, 0.0};
    // CX / CZ / SWAP against the dense 4x4 kernel.
    struct Case2q
    {
        circ::GateKind kind;
        int q0, q1;
    };
    for (const auto &[kind, q0, q1] :
         {Case2q{circ::GateKind::CX, 1, 3},
          Case2q{circ::GateKind::CX, 3, 0},
          Case2q{circ::GateKind::CZ, 0, 2},
          Case2q{circ::GateKind::SWAP, 2, 1}}) {
        sim::StateVector generic = random_state(4, 99);
        sim::StateVector fast = generic;
        generic.apply_2q(sim::gate_matrix_2q(kind, zeros), q0, q1);
        if (kind == circ::GateKind::CX)
            fast.apply_cx(q0, q1);
        else if (kind == circ::GateKind::CZ)
            fast.apply_cz(q0, q1);
        else
            fast.apply_swap(q0, q1);
        EXPECT_LE(max_amp_diff(generic, fast), 1e-12)
            << circ::gate_name(kind);
    }

    // Diagonal 1-qubit gates against the dense 2x2 kernel.
    const std::array<double, 3> angles = {0.7, 0.0, 0.0};
    for (circ::GateKind kind :
         {circ::GateKind::RZ, circ::GateKind::S, circ::GateKind::Sdg,
          circ::GateKind::Z}) {
        const sim::Mat2 u = sim::gate_matrix_1q(kind, angles);
        for (int q = 0; q < 4; ++q) {
            sim::StateVector generic = random_state(4, 7 + q);
            sim::StateVector fast = generic;
            generic.apply_1q(u, q);
            fast.apply_diag_1q(u[0][0], u[1][1], q);
            EXPECT_LE(max_amp_diff(generic, fast), 1e-12)
                << circ::gate_name(kind) << " q" << q;
        }
    }
}

TEST(Kernels, StateVectorDispatchMatchesGenericForEveryGate)
{
    const circ::Circuit c = every_gate_circuit();
    const std::vector<double> params = circuit_params(c, 5);

    sim::StateVector fast(c.num_qubits());
    fast.run(c, params); // specialized kernels (default)

    sim::StateVector generic(c.num_qubits());
    generic.use_specialized_kernels(false);
    generic.run(c, params);

    EXPECT_LE(max_amp_diff(generic, fast), 1e-12);
    EXPECT_NEAR(fast.norm(), 1.0, 1e-12);
}

TEST(Kernels, DensityMatrixDispatchMatchesGenericForEveryGate)
{
    const circ::Circuit c = every_gate_circuit();
    const std::vector<double> params = circuit_params(c, 5);
    const std::size_t dim = std::size_t{1} << c.num_qubits();

    sim::DensityMatrix fast(c.num_qubits());
    fast.run(c, params);

    sim::DensityMatrix generic(c.num_qubits());
    generic.use_specialized_kernels(false);
    generic.run(c, params);

    double worst = 0.0;
    for (std::size_t r = 0; r < dim; ++r)
        for (std::size_t col = 0; col < dim; ++col)
            worst = std::max(worst, std::abs(fast.element(r, col) -
                                             generic.element(r, col)));
    EXPECT_LE(worst, 1e-12);
    EXPECT_NEAR(fast.trace(), 1.0, 1e-12);

    // The noiseless density evolution must still match the pure state.
    sim::StateVector psi(c.num_qubits());
    psi.run(c, params);
    const auto rho_probs =
        fast.probabilities({0, 1, 2, 3, 4});
    const auto psi_probs = psi.probabilities({0, 1, 2, 3, 4});
    ASSERT_EQ(rho_probs.size(), psi_probs.size());
    for (std::size_t k = 0; k < rho_probs.size(); ++k)
        EXPECT_NEAR(rho_probs[k], psi_probs[k], 1e-10) << k;
}

TEST(Kernels, SampleFromMatchesQubitListOverload)
{
    const circ::Circuit c = every_gate_circuit();
    const std::vector<double> params = circuit_params(c, 11);
    sim::StateVector psi(c.num_qubits());
    psi.run(c, params);

    const std::vector<int> qubits = {0, 2, 4};
    const auto probs = psi.probabilities(qubits);
    Rng rng_a(77), rng_b(77);
    for (int shot = 0; shot < 200; ++shot)
        EXPECT_EQ(psi.sample(qubits, rng_a),
                  sim::StateVector::sample_from(probs, rng_b));
}

} // namespace
