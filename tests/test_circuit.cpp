/**
 * @file
 * Unit tests for the circuit IR: construction, parameter indexing,
 * embedding designation, metrics (depth, gate counts), remapping, and
 * the standard template builders.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/builders.hpp"
#include "circuit/circuit.hpp"
#include "circuit/clifford_replica.hpp"
#include "common/logging.hpp"

namespace {

using namespace elv::circ;

TEST(Gate, Metadata)
{
    EXPECT_EQ(gate_num_qubits(GateKind::RX), 1);
    EXPECT_EQ(gate_num_qubits(GateKind::CX), 2);
    EXPECT_EQ(gate_num_params(GateKind::U3), 3);
    EXPECT_EQ(gate_num_params(GateKind::H), 0);
    EXPECT_TRUE(gate_is_clifford(GateKind::CZ));
    EXPECT_FALSE(gate_is_clifford(GateKind::RX));
    EXPECT_TRUE(gate_is_parametric(GateKind::CRY));
    EXPECT_EQ(gate_name(GateKind::Sdg), "Sdg");
}

TEST(Circuit, ParameterIndexingIsSequential)
{
    Circuit c(2);
    c.add_variational(GateKind::RX, {0});
    c.add_variational(GateKind::U3, {1});
    c.add_variational(GateKind::RZ, {0});
    EXPECT_EQ(c.num_params(), 5);
    EXPECT_EQ(c.ops()[0].param_index, 0);
    EXPECT_EQ(c.ops()[1].param_index, 1);
    EXPECT_EQ(c.ops()[2].param_index, 4);
}

TEST(Circuit, DesignateEmbeddingReindexesParams)
{
    Circuit c(2);
    c.add_variational(GateKind::RX, {0});
    c.add_variational(GateKind::RY, {1});
    c.add_variational(GateKind::RZ, {0});
    c.designate_embedding(1, 3);
    EXPECT_EQ(c.num_params(), 2);
    EXPECT_EQ(c.ops()[0].param_index, 0);
    EXPECT_EQ(c.ops()[1].role, ParamRole::Embedding);
    EXPECT_EQ(c.ops()[1].data_index, 3);
    EXPECT_EQ(c.ops()[2].param_index, 1);
    EXPECT_EQ(c.num_data_features(), 4);
}

TEST(Circuit, OpAngleResolution)
{
    Circuit c(2);
    c.add_variational(GateKind::RX, {0});
    c.add_embedding(GateKind::RZ, {1}, 0);
    c.add_embedding(GateKind::RZ, {1}, 0, 1); // product embedding

    const std::vector<double> params = {0.7};
    const std::vector<double> x = {0.3, 2.0};

    EXPECT_DOUBLE_EQ(op_angles(c.ops()[0], params, x)[0], 0.7);
    EXPECT_DOUBLE_EQ(op_angles(c.ops()[1], params, x)[0], 0.3);
    EXPECT_DOUBLE_EQ(op_angles(c.ops()[2], params, x)[0], 0.6);
}

TEST(Circuit, DepthAndCounts)
{
    Circuit c(3);
    c.add_gate(GateKind::H, {0});
    c.add_gate(GateKind::H, {1});
    c.add_gate(GateKind::CX, {0, 1});
    c.add_gate(GateKind::CX, {1, 2});
    c.add_variational(GateKind::RX, {2});
    EXPECT_EQ(c.depth(), 4);
    EXPECT_EQ(c.count_1q(), 3);
    EXPECT_EQ(c.count_2q(), 2);
    EXPECT_EQ(c.count_kind(GateKind::CX), 2);
}

TEST(Circuit, TouchedQubitsIncludesMeasurements)
{
    Circuit c(5);
    c.add_gate(GateKind::H, {1});
    c.set_measured({3});
    const auto touched = c.touched_qubits();
    ASSERT_EQ(touched.size(), 2u);
    EXPECT_EQ(touched[0], 1);
    EXPECT_EQ(touched[1], 3);
}

TEST(Circuit, RemappedRelabelsQubits)
{
    Circuit c(2);
    c.add_gate(GateKind::CX, {0, 1});
    c.set_measured({1});
    const Circuit r = c.remapped({4, 2}, 5);
    EXPECT_EQ(r.num_qubits(), 5);
    EXPECT_EQ(r.ops()[0].qubits[0], 4);
    EXPECT_EQ(r.ops()[0].qubits[1], 2);
    EXPECT_EQ(r.measured()[0], 2);
}

TEST(Circuit, RemappedRejectsAliasingTargets)
{
    Circuit c(2);
    c.add_gate(GateKind::CX, {0, 1});
    c.set_measured({1});
    // Both qubits land on target 3: the CX would silently collapse to
    // a self-gate. Must be rejected, not produced.
    EXPECT_THROW(c.remapped({3, 3}, 5), elv::UsageError);
}

TEST(Circuit, RemappedRejectsOutOfRangeTargets)
{
    Circuit c(2);
    c.add_gate(GateKind::CX, {0, 1});
    c.set_measured({0});
    EXPECT_THROW(c.remapped({0, 7}, 5), elv::UsageError);
    EXPECT_THROW(c.remapped({-1, 1}, 5), elv::UsageError);
}

TEST(Circuit, RemappedIgnoresUnusedQubitTargets)
{
    // compacted() passes -1 for dropped qubits; a negative or aliased
    // target on a qubit the circuit never touches must stay legal.
    Circuit c(4);
    c.add_gate(GateKind::H, {2});
    c.set_measured({2});
    const Circuit r = c.remapped({-1, -1, 0, -1}, 1);
    EXPECT_EQ(r.num_qubits(), 1);
    EXPECT_EQ(r.ops()[0].qubits[0], 0);
    EXPECT_EQ(r.measured()[0], 0);
}

TEST(Circuit, CompactedReducesToTouchedQubits)
{
    Circuit c(6);
    c.add_gate(GateKind::CX, {2, 5});
    c.set_measured({5});
    std::vector<int> kept;
    const Circuit small = c.compacted(kept);
    EXPECT_EQ(small.num_qubits(), 2);
    ASSERT_EQ(kept.size(), 2u);
    EXPECT_EQ(kept[0], 2);
    EXPECT_EQ(kept[1], 5);
    EXPECT_EQ(small.ops()[0].qubits[0], 0);
    EXPECT_EQ(small.ops()[0].qubits[1], 1);
    EXPECT_EQ(small.measured()[0], 1);
}

TEST(Circuit, RejectsBadConstruction)
{
    Circuit c(2);
    EXPECT_THROW(c.add_gate(GateKind::CX, {0, 0}), elv::InternalError);
    EXPECT_THROW(c.add_gate(GateKind::H, {5}), elv::InternalError);
    EXPECT_THROW(c.add_gate(GateKind::RX, {0}), elv::InternalError);
    EXPECT_THROW(c.set_measured({0, 0}), elv::InternalError);
}

TEST(Builders, AngleEmbeddingReuploadsExtraFeatures)
{
    Circuit c(3);
    append_angle_embedding(c, 7);
    EXPECT_EQ(c.num_embedding_gates(), 7);
    EXPECT_EQ(c.num_data_features(), 7);
    EXPECT_EQ(c.ops()[3].qubits[0], 0); // feature 3 re-uploaded on qubit 0
}

TEST(Builders, IqpEmbeddingHasProductTerms)
{
    Circuit c(4);
    append_iqp_embedding(c, 4);
    int products = 0;
    for (const Op &op : c.ops())
        if (op.role == ParamRole::Embedding && op.data_index2 >= 0)
            ++products;
    EXPECT_EQ(products, 3);
    EXPECT_EQ(c.count_kind(GateKind::H), 4);
}

TEST(Builders, BasicEntanglerParamsPerLayer)
{
    Circuit c(4);
    append_basic_entangler_layers(c, 3);
    EXPECT_EQ(c.num_params(), 12);
    EXPECT_EQ(c.count_kind(GateKind::CX), 12);
}

TEST(Builders, HumanDesignedReachesParamBudget)
{
    const Circuit c = build_human_designed(4, 8, 20, 2,
                                           EmbeddingScheme::Angle);
    EXPECT_GE(c.num_params(), 20);
    EXPECT_EQ(c.measured().size(), 2u);
}

TEST(Builders, AmplitudeSchemeEmitsPseudoOp)
{
    const Circuit c = build_human_designed(4, 16, 8, 1,
                                           EmbeddingScheme::Amplitude);
    EXPECT_TRUE(c.has_amplitude_embedding());
}

TEST(Builders, RandomRxyzCzMeetsParamCount)
{
    elv::Rng rng(123);
    const Circuit c = build_random_rxyz_cz(4, 4, 20, 2, rng);
    EXPECT_EQ(c.num_params(), 20);
    EXPECT_EQ(c.measured().size(), 2u);
    // Only RX/RY/RZ/CZ plus the angle embedding should appear.
    for (const Op &op : c.ops()) {
        const bool ok = op.kind == GateKind::RX ||
                        op.kind == GateKind::RY ||
                        op.kind == GateKind::RZ || op.kind == GateKind::CZ;
        EXPECT_TRUE(ok) << gate_name(op.kind);
    }
}

TEST(CliffordReplica, ReplicaIsClifford)
{
    elv::Rng rng(7);
    Circuit c(3);
    append_angle_embedding(c, 3);
    c.add_variational(GateKind::U3, {0});
    c.add_gate(GateKind::CX, {0, 1});
    c.add_variational(GateKind::RY, {2});
    c.add_variational(GateKind::CRY, {1, 2});
    c.set_measured({0, 1, 2});

    EXPECT_FALSE(is_clifford_circuit(c));
    for (int i = 0; i < 10; ++i) {
        const Circuit replica = make_clifford_replica(c, rng);
        EXPECT_TRUE(is_clifford_circuit(replica));
        EXPECT_EQ(replica.measured().size(), 3u);
        EXPECT_EQ(replica.num_params(), 0);
    }
}

TEST(CliffordReplica, PreservesTwoQubitStructure)
{
    elv::Rng rng(11);
    Circuit c(3);
    c.add_variational(GateKind::RX, {0});
    c.add_gate(GateKind::CX, {0, 1});
    c.add_gate(GateKind::CZ, {1, 2});
    c.set_measured({2});
    const Circuit replica = make_clifford_replica(c, rng);
    EXPECT_EQ(replica.count_kind(GateKind::CX), 1);
    EXPECT_EQ(replica.count_kind(GateKind::CZ), 1);
}

TEST(CliffordReplica, SnapToCliffordAngle)
{
    EXPECT_DOUBLE_EQ(snap_to_clifford_angle(0.1), 0.0);
    EXPECT_DOUBLE_EQ(snap_to_clifford_angle(1.5), M_PI / 2);
    EXPECT_DOUBLE_EQ(snap_to_clifford_angle(-1.5), 3 * M_PI / 2);
    EXPECT_DOUBLE_EQ(snap_to_clifford_angle(3.0), M_PI);
}

TEST(CliffordReplica, ReplicasDiffer)
{
    elv::Rng rng(3);
    Circuit c(2);
    for (int i = 0; i < 6; ++i)
        c.add_variational(GateKind::RX, {i % 2});
    c.set_measured({0, 1});
    const auto replicas = make_clifford_replicas(c, 8, rng);
    // At least two replicas should differ in length (different snapped
    // angles lower to different numbers of Clifford gates).
    bool any_difference = false;
    for (std::size_t i = 1; i < replicas.size(); ++i)
        if (replicas[i].ops().size() != replicas[0].ops().size())
            any_difference = true;
    EXPECT_TRUE(any_difference);
}

TEST(CliffordReplica, AmplitudeEmbeddingRejected)
{
    elv::Rng rng(1);
    Circuit c(2);
    c.add_amplitude_embedding();
    EXPECT_THROW(make_clifford_replica(c, rng), elv::InternalError);
}

} // namespace
