/**
 * @file
 * The Fig. 3b experiment: two circuits with *identical* trainable gates
 * but different data embeddings attempt to learn f(x) = sin(2x) / 2.
 * Circuit 1 embeds x through both RX and RY gates (a re-uploading
 * embedding) and learns the target; Circuit 2 embeds through a single
 * RX and fails — the data embedding bounds what a QML circuit can
 * express (Schuld et al.), which is why Elivagar searches over
 * embeddings instead of fixing one.
 */
#include <cmath>
#include <cstdio>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "qml/optimizer.hpp"
#include "sim/gradients.hpp"
#include "sim/observable.hpp"

namespace {

using namespace elv;

/** Train <Z> of a 1-qubit circuit to regress f on [0, 2 pi]. */
double
train_regression(const circ::Circuit &circuit, int epochs,
                 std::vector<double> &params, elv::Rng &rng)
{
    const std::vector<sim::DiagonalObservable> obs = {
        sim::DiagonalObservable::pauli_z(0)};
    qml::Adam adam(params.size(), 0.05);

    double final_mse = 0.0;
    for (int epoch = 0; epoch < epochs; ++epoch) {
        std::vector<double> grads(params.size(), 0.0);
        final_mse = 0.0;
        const int points = 24;
        for (int i = 0; i < points; ++i) {
            const double x = 2.0 * M_PI * i / points;
            const double target = 0.5 * std::sin(2.0 * x);
            const auto g =
                sim::adjoint_gradient(circuit, params, {x}, obs);
            const double err = g.values[0] - target;
            final_mse += err * err / points;
            for (std::size_t p = 0; p < params.size(); ++p)
                grads[p] += 2.0 * err * g.jacobian[0][p] / points;
        }
        adam.step(params, grads);
    }
    (void)rng;
    return final_mse;
}

} // namespace

int
main()
{
    using namespace elv;
    elv::Rng rng(3);

    // Circuit 1: RX(x) . RY(theta0) . RY(x) . RZ(theta1) — the target
    // frequency spectrum is reachable because x enters twice.
    circ::Circuit rich(1);
    rich.add_embedding(circ::GateKind::RX, {0}, 0);
    rich.add_variational(circ::GateKind::RY, {0});
    rich.add_embedding(circ::GateKind::RY, {0}, 0);
    rich.add_variational(circ::GateKind::U3, {0});
    rich.set_measured({0});

    // Circuit 2: the same trainable gates, but x enters only once.
    circ::Circuit poor(1);
    poor.add_embedding(circ::GateKind::RX, {0}, 0);
    poor.add_variational(circ::GateKind::RY, {0});
    poor.add_variational(circ::GateKind::U3, {0});
    poor.set_measured({0});

    std::vector<double> rich_params(
        static_cast<std::size_t>(rich.num_params()), 0.1);
    std::vector<double> poor_params(
        static_cast<std::size_t>(poor.num_params()), 0.1);

    const double rich_mse = train_regression(rich, 300, rich_params, rng);
    const double poor_mse = train_regression(poor, 300, poor_params, rng);

    std::printf("target: f(x) = sin(2x) / 2 on [0, 2pi]\n");
    std::printf("circuit 1 (RX and RY embeddings): final MSE %.5f\n",
                rich_mse);
    std::printf("circuit 2 (RX embedding only):    final MSE %.5f\n",
                poor_mse);
    std::printf("\n  x       target   circuit1  circuit2\n");
    const std::vector<sim::DiagonalObservable> obs = {
        sim::DiagonalObservable::pauli_z(0)};
    for (int i = 0; i <= 12; ++i) {
        const double x = 2.0 * M_PI * i / 12;
        const double t = 0.5 * std::sin(2.0 * x);
        const double y1 =
            sim::expectations(rich, rich_params, {x}, obs)[0];
        const double y2 =
            sim::expectations(poor, poor_params, {x}, obs)[0];
        std::printf("  %5.2f  %8.3f  %8.3f  %8.3f\n", x, t, y1, y2);
    }
    std::printf("\nSame trainable gates, different embeddings: circuit 1 "
                "fits the target,\ncircuit 2 cannot (paper Fig. 3b).\n");
    return rich_mse < poor_mse ? 0 : 1;
}
