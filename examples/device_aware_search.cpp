/**
 * @file
 * Device-aware vs device-unaware circuit generation (the Table 5
 * story): generate matched pairs of circuits with the same gate budget,
 * run the Elivagar circuit as-is, SABRE-route the device-unaware one,
 * and compare 2-qubit gate counts after compilation and fidelity on
 * three devices.
 */
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "compiler/compile.hpp"
#include "core/candidate_gen.hpp"
#include "noise/noise_model.hpp"

int
main()
{
    using namespace elv;

    Table table("Device-aware (Elivagar) vs device-unaware (SABRE-routed) "
                "circuits");
    table.set_header({"device", "policy", "2q before", "2q after",
                      "fidelity"});

    for (const char *name : {"oqc_lucy", "ibm_guadalupe", "ibmq_kolkata"}) {
        const dev::Device device = dev::make_device(name);
        const noise::NoisyDensitySimulator noisy(device);
        elv::Rng rng(11);

        core::CandidateConfig config;
        config.num_qubits = 5;
        config.num_params = 16;
        config.num_embeds = 4;
        config.num_meas = 2;
        config.num_features = 4;

        const int pairs = 6;
        double aware_fid = 0.0, unaware_fid = 0.0;
        int aware_2q = 0, unaware_2q_before = 0, unaware_2q_after = 0;

        for (int p = 0; p < pairs; ++p) {
            const circ::Circuit aware =
                core::generate_candidate(device, config, rng);
            const circ::Circuit unaware =
                core::generate_device_unaware(config, rng);

            const auto routed =
                comp::compile_for_device(unaware, device, 3, rng);

            std::vector<double> params(
                static_cast<std::size_t>(aware.num_params()));
            for (auto &v : params)
                v = rng.uniform(-M_PI, M_PI);
            std::vector<double> x(4);
            for (auto &v : x)
                v = rng.uniform(-M_PI / 2, M_PI / 2);

            aware_fid += noisy.fidelity(aware, params, x) / pairs;
            unaware_fid +=
                noisy.fidelity(routed.circuit, params, x) / pairs;
            aware_2q += aware.count_2q();
            unaware_2q_before += unaware.count_2q();
            unaware_2q_after += routed.stats.gates_2q;
        }

        table.add_row({name, "SABRE",
                       Table::fmt(unaware_2q_before / double(pairs), 1),
                       Table::fmt(unaware_2q_after / double(pairs), 1),
                       Table::fmt(unaware_fid, 3)});
        table.add_row({name, "Elivagar",
                       Table::fmt(aware_2q / double(pairs), 1),
                       Table::fmt(aware_2q / double(pairs), 1),
                       Table::fmt(aware_fid, 3)});
    }
    table.print();
    std::printf("\nElivagar circuits need no routing, so their 2-qubit "
                "gate count is unchanged\nby compilation and their "
                "fidelity is higher (paper Sec. 9.1).\n");
    return 0;
}
