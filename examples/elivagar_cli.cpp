/**
 * @file
 * Command-line front end for the library: run an Elivagar search for any
 * catalog benchmark on any catalog device, train the winner, report
 * noiseless/noisy accuracy, and optionally dump the circuit (native text
 * or bound OpenQASM).
 *
 * Usage:
 *   elivagar_cli [--benchmark NAME] [--device NAME] [--candidates N]
 *                [--epochs N] [--seed N] [--scale F] [--threads N]
 *                [--workers N] [--attach host:port] [--dist-state DIR]
 *                [--emit text|qasm] [--trace FILE] [--metrics]
 *                [--report FILE] [--list]
 *
 * --workers N fans the candidate evaluation out over N local worker
 * processes (forked elivagar_worker binaries); --attach adds running
 * `elivagar_worker --serve` peers. The merged ranking is bit-identical
 * to the single-process search at any worker count. --dist-state DIR
 * keeps per-shard journals there so a crashed run resumes; a worker
 * that dies mid-shard is replaced and its remaining candidates
 * reissued automatically either way.
 *   elivagar_cli lint [FILE ...] [--builtin] [--device NAME]
 *                [--replica] [--require-embedding-prefix] [--rules]
 *   elivagar_cli submit|status|cancel|result|watch|health|metrics|
 *                events [--host A] [--port N] ...  (thin client mode)
 *
 * One-shot runs accept --deadline-sec: the search is cancelled
 * cooperatively when the wall-clock budget expires (exit status 3);
 * with --checkpoint the finished stages stay journaled, so re-running
 * resumes instead of starting over.
 *
 * Client mode talks to a running elivagar_server over its JSON line
 * protocol: `submit` sends a job spec built from the same
 * --benchmark/--device/... flags, `watch` streams status lines until
 * the job reaches a terminal state.
 *
 * Observability: --trace writes a Chrome trace_event JSON (open in
 * https://ui.perfetto.dev), --metrics turns on the counter registry and
 * prints it after the run, --report writes the structured run report,
 * and --profile samples the search with the SIGPROF profiler and
 * writes collapsed stacks (feed to flamegraph.pl / speedscope).
 *
 * The `lint` subcommand runs the elvlint static verifier over circuit
 * files in the native text format (and, with --builtin, over every
 * builder template, generated candidate, and catalog device). Exit
 * status 1 when any error-severity diagnostic fires.
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "circuit/builders.hpp"
#include "circuit/serialize.hpp"
#include "common/cancel.hpp"
#include "common/logging.hpp"
#include "common/retry.hpp"
#include "core/checkpoint.hpp"
#include "dist/coordinator.hpp"
#include "compiler/compile.hpp"
#include "core/candidate_gen.hpp"
#include "core/run_report.hpp"
#include "core/search.hpp"
#include "device/device.hpp"
#include "lint/dataflow.hpp"
#include "lint/lint.hpp"
#include "lint/sarif.hpp"
#include "noise/noise_model.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "qml/synthetic.hpp"
#include "sim/precision.hpp"
#include "qml/trainer.hpp"
#include "server/json_value.hpp"
#include "server/protocol.hpp"
#include "server/tcp.hpp"
#include "sim/fusion.hpp"

namespace {

struct CliOptions
{
    std::string benchmark = "moons";
    std::string device = "ibm_lagos";
    int candidates = 32;
    int epochs = 40;
    std::uint64_t seed = 7;
    double scale = 0.3;
    std::string emit; // "", "text" or "qasm"
    std::string checkpoint;
    double fault_rate = 0.0;
    int threads = 0; // 0 = one per hardware thread
    std::string trace_path;
    std::string profile_path;
    std::string report_path;
    bool metrics = false;
    /** Wall-clock budget for the search phase; 0 disables. */
    double deadline_sec = 0.0;
    /** Amplitude precision of the CNR/RepCap proxies ("f64"/"f32"). */
    std::string precision = "f64";
    /** Local worker processes; > 0 switches to distributed search. */
    int workers = 0;
    /** Remote `elivagar_worker --serve` peers to attach (host:port). */
    std::vector<std::string> attach;
    /** Worker binary override ("" = next to this binary / $PATH). */
    std::string worker_bin;
    /** Shard-journal directory for distributed crash resume. */
    std::string dist_state;
    /** Write the full candidate ranking (deterministic, hexfloat). */
    std::string dump_ranking;
    /** Stop after the search: skip training/eval (CI byte-compares). */
    bool search_only = false;
    /** Test hook: first local worker SIGKILLs itself after N records. */
    int dist_test_crash = 0;
    /** Dead-structure pruning in CNR/RepCap scoring and training. */
    bool prune_dead = false;
};

void
print_usage()
{
    std::printf(
        "usage: elivagar_cli [options]\n"
        "  --benchmark NAME   Table 2 benchmark (default moons)\n"
        "  --device NAME      Table 3 device (default ibm_lagos)\n"
        "  --candidates N     search pool size (default 32)\n"
        "  --epochs N         training epochs (default 40)\n"
        "  --seed N           search/data seed (default 7)\n"
        "  --scale F          dataset scale in (0,1] (default 0.3)\n"
        "  --threads N        search worker threads (default: all "
        "hardware threads; results are identical for any N)\n"
        "  --workers N        fan the evaluation out over N local "
        "worker processes;\n"
        "                     the merged ranking is bit-identical to "
        "the\n"
        "                     single-process search\n"
        "  --attach H:P       also use a running `elivagar_worker "
        "--serve` at host H\n"
        "                     port P (repeatable)\n"
        "  --worker-bin PATH  worker binary for --workers (default: "
        "the\n"
        "                     elivagar_worker next to this binary)\n"
        "  --dist-state DIR   journal shards in DIR; a crashed "
        "distributed run\n"
        "                     re-run with the same DIR resumes\n"
        "  --dump-ranking F   write the full candidate ranking to F "
        "(hexfloat,\n"
        "                     deterministic — byte-comparable)\n"
        "  --search-only      stop after the search (skip training "
        "and accuracy\n"
        "                     evaluation)\n"
        "  --emit text|qasm   print the selected circuit\n"
        "  --checkpoint PATH  journal the search; resumes if PATH "
        "exists\n"
        "  --deadline-sec F   cancel the search after F seconds of "
        "wall clock\n"
        "                     (exit 3; journaled stages survive)\n"
        "  --precision P      proxy-scoring precision: f64 (default) "
        "or f32\n"
        "                     (CNR/RepCap only; training stays f64)\n"
        "  --prune-dead       elide ops outside the measurement "
        "lightcone\n"
        "                     during CNR/RepCap scoring and training "
        "(rankings\n"
        "                     preserved; fingerprinted)\n"
        "  --fault-rate F     inject transient backend faults with "
        "probability F\n"
        "  --trace FILE       write a Chrome trace of the search "
        "(Perfetto-viewable)\n"
        "  --profile FILE     sample the search with SIGPROF and write\n"
        "                     collapsed stacks (flamegraph input)\n"
        "  --metrics          collect and print pipeline metrics\n"
        "  --report FILE      write the structured run report JSON\n"
        "  --list             list benchmarks and devices, then exit\n"
        "subcommands:\n"
        "  lint               static-verify circuits and devices "
        "(elivagar_cli lint --help)\n"
        "  submit|status|cancel|result|watch|health|metrics|events\n"
        "                     talk to a running elivagar_server "
        "(elivagar_cli submit --help)\n");
}

bool
parse(int argc, char **argv, CliOptions &options)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                elv::fatal("missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--benchmark")
            options.benchmark = value();
        else if (arg == "--device")
            options.device = value();
        else if (arg == "--candidates")
            options.candidates = std::atoi(value());
        else if (arg == "--epochs")
            options.epochs = std::atoi(value());
        else if (arg == "--seed")
            options.seed = static_cast<std::uint64_t>(
                std::strtoull(value(), nullptr, 10));
        else if (arg == "--scale")
            options.scale = std::atof(value());
        else if (arg == "--threads")
            options.threads = std::atoi(value());
        else if (arg == "--workers") {
            options.workers = std::atoi(value());
            if (options.workers < 0)
                elv::fatal("--workers must be >= 0");
        } else if (arg == "--attach")
            options.attach.push_back(value());
        else if (arg == "--worker-bin")
            options.worker_bin = value();
        else if (arg == "--dist-state")
            options.dist_state = value();
        else if (arg == "--dump-ranking")
            options.dump_ranking = value();
        else if (arg == "--search-only")
            options.search_only = true;
        else if (arg == "--dist-test-crash")
            options.dist_test_crash = std::atoi(value());
        else if (arg == "--emit")
            options.emit = value();
        else if (arg == "--checkpoint")
            options.checkpoint = value();
        else if (arg == "--deadline-sec")
            options.deadline_sec = std::atof(value());
        else if (arg == "--precision")
            options.precision = value();
        else if (arg == "--prune-dead")
            options.prune_dead = true;
        else if (arg == "--fault-rate")
            options.fault_rate = std::atof(value());
        else if (arg == "--trace")
            options.trace_path = value();
        else if (arg == "--profile")
            options.profile_path = value();
        else if (arg == "--report")
            options.report_path = value();
        else if (arg == "--metrics")
            options.metrics = true;
        else if (arg == "--list") {
            std::printf("benchmarks:");
            for (const auto &spec : elv::qml::benchmark_table())
                std::printf(" %s", spec.name.c_str());
            std::printf("\ndevices:");
            for (const auto &name : elv::dev::device_catalog())
                std::printf(" %s", name.c_str());
            std::printf("\n");
            return false;
        } else if (arg == "--help" || arg == "-h") {
            print_usage();
            return false;
        } else {
            elv::fatal("unknown option: " + arg);
        }
    }
    return true;
}

/** Options for the `lint` subcommand. */
struct LintCliOptions
{
    std::vector<std::string> files;
    std::string device; // empty = structural lint only
    bool builtin = false;
    bool replica = false;
    bool require_embedding_prefix = false;
    std::uint64_t seed = 7;
    /** Warnings fail the run (after baseline suppression). */
    bool werror = false;
    /** Output format: "text", "json" or "sarif". */
    std::string format = "text";
    /** Rewrite FILE arguments with dead structure elided. */
    bool fix = false;
    /** Baseline file suppressing known findings ("" = none). */
    std::string baseline_path;
    /** Write the current findings as a baseline file, then exit. */
    std::string write_baseline_path;
};

void
print_lint_usage()
{
    std::printf(
        "usage: elivagar_cli lint [FILE ...] [options]\n"
        "  FILE ...           circuits in the native text format\n"
        "  --builtin          lint the builder templates, generated\n"
        "                     candidates, compiled/fused programs, and\n"
        "                     every catalog device model\n"
        "  --device NAME      also check 2-qubit gates against NAME's\n"
        "                     coupling map\n"
        "  --replica          enable the clifford-replica rules\n"
        "  --require-embedding-prefix\n"
        "                     require embeddings before variational "
        "gates\n"
        "  --seed N           seed for --builtin generators (default "
        "7)\n"
        "  --werror           exit nonzero on warnings too\n"
        "  --format FMT       output format: text (default), json, "
        "sarif\n"
        "  --fix              rewrite FILEs in place with dead "
        "structure\n"
        "                     elided (out-of-lightcone ops removed, "
        "dead\n"
        "                     parameter slots dropped), then re-lint\n"
        "  --baseline FILE    suppress findings listed in FILE "
        "(exit-code\n"
        "                     counts skip them; SARIF marks them "
        "suppressed)\n"
        "  --write-baseline FILE\n"
        "                     write the current findings to FILE and "
        "exit 0\n"
        "  --rules            list the rule catalog, then exit\n"
        "exit status: 1 when any error fires (with --werror: any "
        "error\n"
        "or warning) that the baseline does not suppress\n");
}

/** Text rendering of one artifact's report (non-suppressed count). */
void
print_artifact_text(const elv::lint::ArtifactReport &entry)
{
    using elv::lint::Severity;
    const std::size_t errors = entry.report.count(Severity::Error);
    if (entry.report.diagnostics.empty()) {
        std::printf("  %-40s clean\n", entry.artifact.c_str());
    } else {
        std::printf("  %-40s %zu error(s), %zu warning(s)\n",
                    entry.artifact.c_str(), errors,
                    entry.report.count(Severity::Warning));
        std::printf("%s", entry.report.to_string().c_str());
    }
}

/**
 * Lint everything the library can build: each builder template, the
 * device models, and — per catalog device — generated candidates plus
 * their compiled and fused forms. This is the CI lint-smoke and
 * lint-gate surface; results are appended to `reports` and rendered by
 * the caller in the selected format.
 */
void
lint_builtin(const LintCliOptions &options,
             std::vector<elv::lint::ArtifactReport> &reports)
{
    using namespace elv;

    const circ::EmbeddingScheme schemes[] = {
        circ::EmbeddingScheme::Angle, circ::EmbeddingScheme::IQP,
        circ::EmbeddingScheme::Amplitude};
    const char *scheme_names[] = {"angle", "iqp", "amplitude"};
    for (int s = 0; s < 3; ++s) {
        const int features =
            schemes[static_cast<std::size_t>(s)] ==
                    circ::EmbeddingScheme::Amplitude
                ? 16
                : 4;
        const circ::Circuit c = circ::build_human_designed(
            4, features, 12, 2, schemes[static_cast<std::size_t>(s)]);
        reports.push_back({std::string("human-designed/") +
                               scheme_names[static_cast<std::size_t>(s)],
                           lint::lint_circuit(c)});
    }
    {
        elv::Rng rng(options.seed);
        const circ::Circuit c =
            circ::build_random_rxyz_cz(4, 4, 16, 2, rng);
        reports.push_back({"random-rxyz-cz", lint::lint_circuit(c)});
    }

    for (const auto &name : dev::device_catalog()) {
        const dev::Device device = dev::make_device(name);
        reports.push_back({name, lint::lint_device(device)});
    }

    for (const auto &name : dev::device_catalog()) {
        const dev::Device device = dev::make_device(name);
        elv::Rng rng(options.seed);
        core::CandidateConfig config;
        config.num_qubits = std::min(4, device.num_qubits());
        config.num_params = 12;
        config.num_embeds = 4;
        config.num_meas = 2;
        config.num_features = 4;
        lint::LintOptions device_checked;
        device_checked.device = &device;
        for (int i = 0; i < 4; ++i) {
            const circ::Circuit c =
                core::generate_candidate(device, config, rng);
            reports.push_back(
                {name + "/candidate-" + std::to_string(i),
                 lint::lint_circuit(c, device_checked)});
        }
        // Device-unaware candidates become device-native through the
        // compiler; the compiled output must satisfy the connectivity
        // rule, and its fused form the barrier invariants.
        const circ::Circuit logical =
            core::generate_device_unaware(config, rng);
        const auto compiled =
            comp::compile_for_device(logical, device, 2, rng);
        reports.push_back(
            {name + "/compiled",
             lint::lint_circuit(compiled.circuit, device_checked)});
        const sim::FusedProgram fused =
            sim::FusedProgram::compile(compiled.circuit);
        reports.push_back({name + "/fused",
                           lint::lint_program(fused, compiled.circuit,
                                              device_checked)});
    }
}

int
run_lint(int argc, char **argv)
{
    using namespace elv;

    LintCliOptions options;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                elv::fatal("missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--builtin")
            options.builtin = true;
        else if (arg == "--device")
            options.device = value();
        else if (arg == "--replica")
            options.replica = true;
        else if (arg == "--require-embedding-prefix")
            options.require_embedding_prefix = true;
        else if (arg == "--seed")
            options.seed = static_cast<std::uint64_t>(
                std::strtoull(value(), nullptr, 10));
        else if (arg == "--werror")
            options.werror = true;
        else if (arg == "--format")
            options.format = value();
        else if (arg == "--fix")
            options.fix = true;
        else if (arg == "--baseline")
            options.baseline_path = value();
        else if (arg == "--write-baseline")
            options.write_baseline_path = value();
        else if (arg == "--rules") {
            for (const auto &rule : lint::rule_catalog())
                std::printf("%-18s %-8s %s\n", rule.id.c_str(),
                            lint::severity_name(rule.severity),
                            rule.summary.c_str());
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            print_lint_usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            elv::fatal("unknown lint option: " + arg);
        } else {
            options.files.push_back(arg);
        }
    }
    if (options.files.empty() && !options.builtin)
        elv::fatal("lint needs circuit files or --builtin");
    if (options.format != "text" && options.format != "json" &&
        options.format != "sarif")
        elv::fatal("--format must be text, json or sarif");
    if (options.fix && options.files.empty())
        elv::fatal("--fix rewrites circuit files; none given");

    std::optional<dev::Device> device;
    lint::LintOptions lint_options;
    if (!options.device.empty()) {
        device.emplace(dev::make_device(options.device));
        lint_options.device = &*device;
    }
    lint_options.expect_clifford_replica = options.replica;
    lint_options.require_embedding_prefix =
        options.require_embedding_prefix;

    std::vector<lint::ArtifactReport> reports;
    for (const auto &path : options.files) {
        std::ifstream in(path);
        if (!in)
            elv::fatal("cannot open " + path);
        std::ostringstream text;
        text << in.rdbuf();
        // A file that cannot even deserialize (bad qubit index, duplicate
        // measurement, ...) is reported as a parse diagnostic against the
        // file rather than aborting the whole lint run.
        try {
            circ::Circuit c = circ::from_text(text.str());
            if (options.fix) {
                const lint::FixResult fixed =
                    lint::elide_dead_structure(c);
                if (fixed.ops_elided > 0) {
                    std::ofstream out(path,
                                      std::ios::out | std::ios::trunc);
                    if (!out)
                        elv::fatal("cannot rewrite " + path);
                    out << circ::to_text(fixed.circuit);
                    if (options.format == "text")
                        std::printf("  %-40s fixed: %zu op(s), %zu "
                                    "param slot(s) elided\n",
                                    path.c_str(), fixed.ops_elided,
                                    fixed.params_elided);
                    c = fixed.circuit;
                }
            }
            reports.push_back(
                {path, lint::lint_circuit(c, lint_options)});
        } catch (const std::exception &e) {
            lint::Report parse;
            parse.add(lint::Severity::Error, "parse", -1, e.what());
            reports.push_back({path, parse});
        }
    }
    if (options.builtin)
        lint_builtin(options, reports);

    if (!options.write_baseline_path.empty()) {
        std::ofstream out(options.write_baseline_path,
                          std::ios::out | std::ios::trunc);
        if (!out)
            elv::fatal("cannot write " + options.write_baseline_path);
        out << lint::Baseline::render(reports);
        std::printf("baseline written to %s\n",
                    options.write_baseline_path.c_str());
        return 0;
    }

    lint::Baseline baseline;
    const bool have_baseline = !options.baseline_path.empty();
    if (have_baseline)
        baseline = lint::Baseline::load(options.baseline_path);
    const lint::Baseline *suppress =
        have_baseline ? &baseline : nullptr;
    const lint::FindingCounts counts =
        lint::count_findings(reports, suppress);

    if (options.format == "sarif") {
        std::printf("%s\n", lint::to_sarif(reports, suppress).c_str());
    } else if (options.format == "json") {
        std::printf("%s\n", lint::to_json(reports, suppress).c_str());
    } else {
        for (const auto &entry : reports)
            print_artifact_text(entry);
        if (counts.suppressed > 0)
            std::printf("lint: %zu finding(s) suppressed by baseline\n",
                        counts.suppressed);
    }

    const bool failed =
        counts.errors > 0 || (options.werror && counts.warnings > 0);
    if (options.format == "text") {
        if (failed)
            std::printf("lint: %zu error(s), %zu warning(s)%s\n",
                        counts.errors, counts.warnings,
                        options.werror ? " (werror)" : "");
        else
            std::printf("lint: ok\n");
    }
    return failed ? 1 : 0;
}

/**
 * Deterministic hexfloat ranking dump. Byte-identical for the same
 * spec at any worker count — the CI dist-smoke job `cmp`s the serial
 * and distributed files.
 */
void
write_ranking(const std::string &path,
              const elv::core::SearchResult &found)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        elv::fatal("cannot write " + path);
    out << "elv-ranking 1\n";
    for (std::size_t n = 0; n < found.candidates.size(); ++n) {
        const auto &record = found.candidates[n];
        out << "cand " << n << " "
            << elv::core::double_to_hex(record.score) << " "
            << elv::core::double_to_hex(record.cnr) << " "
            << elv::core::double_to_hex(record.repcap) << " "
            << (record.rejected_by_cnr ? 1 : 0) << "\n";
    }
    out << "best " << elv::core::double_to_hex(found.best_score)
        << "\n";
    out << "survivors " << found.survivors << "\n";
    out << "executions " << found.total_executions() << "\n";
}

/** Options for the client subcommands (submit/status/...). */
struct ClientCliOptions
{
    std::string host = "127.0.0.1";
    int port = 7421;
    std::string id;
    elv::srv::JobSpec spec;
    /** submit only: stream status until terminal after submitting. */
    bool watch_after = false;
    /** events only: paging cursor and clip. */
    std::uint64_t since = 0;
    std::uint64_t limit = 64;
};

void
print_client_usage()
{
    std::printf(
        "usage: elivagar_cli submit|status|cancel|result|watch|"
        "health|metrics|events [options]\n"
        "  --host A           server address (default 127.0.0.1)\n"
        "  --port N           server port (default 7421)\n"
        "  --id job-N         job id (status/cancel/result/watch)\n"
        "submit options (mirror the one-shot search flags):\n"
        "  --benchmark NAME --device NAME --candidates N --seed N\n"
        "  --scale F --priority N --deadline-sec F --precision f64|f32\n"
        "  --workers N        run the job's search over N worker "
        "processes\n"
        "  --watch            stream status until the job finishes\n"
        "events options:\n"
        "  --since S          only events with seq > S (default 0)\n"
        "  --limit N          newest-clipped page size (default 64)\n"
        "`status` without --id lists every job the server knows.\n");
}

/** True when the response says ok; always prints the response line. */
bool
print_response(const std::string &response)
{
    std::printf("%s\n", response.c_str());
    elv::srv::JsonValue value;
    std::string error;
    if (!elv::srv::json_parse(response, value, error))
        return false;
    const elv::srv::JsonValue *ok = value.get("ok");
    return ok && ok->as_bool(false);
}

/**
 * Stream status lines for `id` until it reaches a terminal state.
 *
 * A dropped connection (server restart, network blip) is transient:
 * the watch reconnects with bounded full-jitter backoff and resumes —
 * the server re-sends the current status on re-watch, so nothing is
 * missed. Only a server that *refuses* the watch (unknown job) or
 * `max_attempts` consecutive failed reconnects end the command.
 */
int
watch_until_terminal(const std::string &host, std::uint16_t port,
                     const std::string &id)
{
    elv::RetryPolicy policy;
    policy.max_attempts = 6;
    policy.initial_backoff_ms = 200.0;
    policy.max_backoff_ms = 5000.0;
    policy.full_jitter = true;
    elv::Rng rng(0x3a7c0u ^ static_cast<std::uint64_t>(port));
    int consecutive_failures = 0;

    for (;;) {
        std::string error;
        elv::srv::Client client(host, port, error);
        bool watching = false;
        if (client.connected() &&
            client.send_line(elv::srv::make_watch_request(id), error)) {
            std::string line;
            if (client.read_line(line, error)) { // the {"ok":...} ack
                if (!print_response(line))
                    return 1; // refused: unknown job — not transient
                watching = true;
                consecutive_failures = 0;
                while (client.read_line(line, error)) {
                    std::printf("%s\n", line.c_str());
                    std::fflush(stdout);
                    elv::srv::JsonValue value;
                    std::string parse_error;
                    if (!elv::srv::json_parse(line, value, parse_error))
                        continue;
                    const elv::srv::JsonValue *state =
                        value.get("state");
                    if (!state || !state->is_string())
                        continue;
                    const auto parsed =
                        elv::srv::job_state_from_name(state->text);
                    if (parsed && elv::srv::job_state_terminal(*parsed))
                        return *parsed == elv::srv::JobState::Completed
                                   ? 0
                                   : 2;
                }
            }
        }
        ++consecutive_failures;
        if (consecutive_failures >= policy.max_attempts)
            elv::fatal("watch: giving up after " +
                       std::to_string(consecutive_failures) +
                       " attempts: " +
                       (error.empty() ? "connection lost" : error));
        const double delay_ms =
            policy.backoff_delay_ms(consecutive_failures - 1, rng);
        std::fprintf(stderr,
                     "watch: %s (%s); reconnecting in %.0f ms "
                     "(attempt %d/%d)\n",
                     watching ? "stream interrupted"
                              : "connection failed",
                     error.empty() ? "connection lost" : error.c_str(),
                     delay_ms, consecutive_failures + 1,
                     policy.max_attempts);
        std::this_thread::sleep_for(std::chrono::duration<double,
                                                          std::milli>(
            delay_ms));
    }
}

int
run_client(int argc, char **argv)
{
    using namespace elv;

    const std::string op = argv[1];
    ClientCliOptions options;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                elv::fatal("missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--host")
            options.host = value();
        else if (arg == "--port")
            options.port = std::atoi(value());
        else if (arg == "--id")
            options.id = value();
        else if (arg == "--benchmark")
            options.spec.benchmark = value();
        else if (arg == "--device")
            options.spec.device = value();
        else if (arg == "--candidates")
            options.spec.candidates = std::atoi(value());
        else if (arg == "--seed")
            options.spec.seed = static_cast<std::uint64_t>(
                std::strtoull(value(), nullptr, 10));
        else if (arg == "--scale")
            options.spec.scale = std::atof(value());
        else if (arg == "--priority")
            options.spec.priority = std::atoi(value());
        else if (arg == "--deadline-sec")
            options.spec.deadline_sec = std::atof(value());
        else if (arg == "--precision")
            options.spec.precision = value();
        else if (arg == "--workers")
            options.spec.workers = std::atoi(value());
        else if (arg == "--watch")
            options.watch_after = true;
        else if (arg == "--since")
            options.since = static_cast<std::uint64_t>(
                std::strtoull(value(), nullptr, 10));
        else if (arg == "--limit")
            options.limit = static_cast<std::uint64_t>(
                std::strtoull(value(), nullptr, 10));
        else if (arg == "--help" || arg == "-h") {
            print_client_usage();
            return 0;
        } else {
            elv::fatal("unknown client option: " + arg);
        }
    }
    if (options.port <= 0 || options.port > 65535)
        elv::fatal("--port must lie in [1, 65535]");

    std::string error;
    srv::Client client(options.host,
                       static_cast<std::uint16_t>(options.port), error);
    if (!client.connected())
        elv::fatal("cannot connect to " + options.host + ":" +
                   std::to_string(options.port) + ": " + error);

    auto roundtrip = [&](const std::string &request) -> int {
        std::string response;
        if (!client.request(request, response, error))
            elv::fatal("request failed: " + error);
        return print_response(response) ? 0 : 1;
    };
    auto require_id = [&]() {
        if (options.id.empty())
            elv::fatal(op + " needs --id job-N");
    };

    if (op == "submit") {
        std::string response;
        if (!client.request(srv::make_submit_request(options.spec),
                            response, error))
            elv::fatal("request failed: " + error);
        if (!print_response(response))
            return 1;
        if (!options.watch_after)
            return 0;
        srv::JsonValue value;
        std::string parse_error;
        if (!srv::json_parse(response, value, parse_error))
            return 1;
        const srv::JsonValue *id = value.get("id");
        if (!id || !id->is_string())
            return 1;
        return watch_until_terminal(
            options.host, static_cast<std::uint16_t>(options.port),
            id->text);
    }
    if (op == "status")
        return roundtrip(options.id.empty()
                             ? srv::make_jobs_request()
                             : srv::make_status_request(options.id));
    if (op == "cancel") {
        require_id();
        return roundtrip(srv::make_cancel_request(options.id));
    }
    if (op == "result") {
        require_id();
        return roundtrip(srv::make_result_request(options.id));
    }
    if (op == "watch") {
        require_id();
        return watch_until_terminal(
            options.host, static_cast<std::uint16_t>(options.port),
            options.id);
    }
    if (op == "health")
        return roundtrip(srv::make_health_request());
    if (op == "metrics")
        return roundtrip(srv::make_metrics_request());
    if (op == "events")
        return roundtrip(srv::make_events_request(
            options.since,
            static_cast<std::size_t>(options.limit)));
    elv::fatal("unknown client subcommand: " + op);
    return 1;
}

bool
is_client_op(const char *arg)
{
    for (const char *op : {"submit", "status", "cancel", "result",
                           "watch", "health", "metrics", "events"})
        if (std::strcmp(arg, op) == 0)
            return true;
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && is_client_op(argv[1])) {
        try {
            return run_client(argc, argv);
        } catch (const elv::UsageError &error) {
            std::fprintf(stderr, "error: %s\n", error.what());
            print_client_usage();
            return 1;
        } catch (const std::exception &error) {
            std::fprintf(stderr, "error: %s\n", error.what());
            return 1;
        }
    }
    if (argc > 1 && std::strcmp(argv[1], "lint") == 0) {
        try {
            return run_lint(argc, argv);
        } catch (const elv::UsageError &error) {
            std::fprintf(stderr, "error: %s\n", error.what());
            print_lint_usage();
            return 1;
        } catch (const std::exception &error) {
            std::fprintf(stderr, "error: %s\n", error.what());
            return 1;
        }
    }
    using namespace elv;

    CliOptions options;
    try {
        if (!parse(argc, argv, options))
            return 0;

        const qml::Benchmark bench = qml::make_benchmark(
            options.benchmark, options.seed, options.scale);
        const dev::Device device = dev::make_device(options.device);
        std::printf("benchmark %s (%zu train / %zu test), device %s\n",
                    bench.spec.name.c_str(), bench.train.size(),
                    bench.test.size(), device.name.c_str());

        core::ElivagarConfig config;
        config.num_candidates = options.candidates;
        config.candidate.num_qubits = bench.spec.qubits;
        config.candidate.num_params = bench.spec.params;
        config.candidate.num_embeds = std::min(
            bench.spec.params,
            std::max(bench.spec.dim, bench.spec.params / 4));
        config.candidate.num_meas = bench.spec.meas;
        config.candidate.num_features = bench.spec.dim;
        config.seed = options.seed;
        config.threads = options.threads < 0 ? 0 : options.threads;
        config.resilience.checkpoint_path = options.checkpoint;
        {
            const auto precision =
                sim::precision_from_name(options.precision);
            if (!precision)
                elv::fatal("--precision must be f64 or f32");
            config.cnr.precision = *precision;
            config.repcap.precision = *precision;
        }
        if (options.prune_dead) {
            config.cnr.prune_dead_structure = true;
            config.repcap.prune_dead_structure = true;
        }
        if (options.deadline_sec > 0.0) {
            // Same cooperative-cancellation machinery the server uses
            // for per-job deadlines; the hooks are not fingerprinted,
            // so a journaled run resumes under a different budget.
            auto token = std::make_shared<CancelToken>();
            token->set_deadline_after(options.deadline_sec);
            config.hooks.cancel = token;
        }
        if (options.fault_rate > 0.0) {
            config.resilience.enabled = true;
            config.resilience.faults.transient_rate = options.fault_rate;
            config.resilience.retry.max_attempts = 8;
        }

        // Observability covers the search pipeline: tracing/metrics go
        // live just before elivagar_search and the artifacts are
        // written as soon as it returns, so the trace stays scoped to
        // the phase/candidate spans (training is far chattier).
        if (options.metrics)
            obs::Registry::global().set_enabled(true);
        if (!options.trace_path.empty())
            obs::Tracer::global().start();
        if (!options.profile_path.empty())
            obs::Profiler::global().start();

        const bool distributed =
            options.workers > 0 || !options.attach.empty();
        core::SearchResult found;
        std::optional<dist::DistStats> dist_stats;
        if (distributed) {
            if (options.fault_rate > 0.0)
                elv::fatal("--fault-rate injects faults into the "
                           "in-process executor and cannot be "
                           "combined with --workers/--attach");
            if (!options.checkpoint.empty())
                elv::fatal("--checkpoint journals an in-process "
                           "search; distributed runs journal per "
                           "shard — use --dist-state DIR");
            if (options.prune_dead)
                elv::fatal("--prune-dead is not plumbed through the "
                           "worker job spec yet; drop --workers/"
                           "--attach to use it");
            srv::JobSpec spec;
            spec.benchmark = options.benchmark;
            spec.device = options.device;
            spec.candidates = options.candidates;
            spec.seed = options.seed;
            spec.scale = options.scale;
            spec.precision = options.precision;
            dist::DistConfig dc;
            dc.workers = options.workers;
            dc.attach = options.attach;
            dc.worker_binary = options.worker_bin;
            dc.threads_per_worker =
                options.threads <= 0 ? 1 : options.threads;
            dc.coordinator_threads =
                options.threads < 0 ? 0 : options.threads;
            dc.state_dir = options.dist_state;
            dc.crash_after = options.dist_test_crash;
            dc.hooks = config.hooks;
            const dist::DistResult dr =
                dist::distributed_search(spec, dc);
            found = dr.result;
            dist_stats = dr.stats;
        } else {
            found = core::elivagar_search(device, bench.train, config);
        }
        std::printf("search: %d survivors of %d candidates, score "
                    "%.3f, %llu executions%s\n",
                    found.survivors, options.candidates,
                    found.best_score,
                    static_cast<unsigned long long>(
                        found.total_executions()),
                    found.resumed ? " (resumed from checkpoint)" : "");
        if (dist_stats)
            std::printf(
                "dist: %d shard-stage(s) over %d worker(s) "
                "(%d spawned, %d attached), %llu records streamed, "
                "%llu resumed, %d reissue(s), %llu local "
                "fallback(s)\n",
                dist_stats->shards,
                options.workers +
                    static_cast<int>(options.attach.size()),
                dist_stats->workers_spawned,
                dist_stats->workers_attached,
                static_cast<unsigned long long>(
                    dist_stats->records_received),
                static_cast<unsigned long long>(
                    dist_stats->records_resumed),
                dist_stats->shards_reissued,
                static_cast<unsigned long long>(
                    dist_stats->fallback_records));

        if (!options.trace_path.empty() &&
            obs::Tracer::global().write(options.trace_path))
            std::printf("trace written to %s\n",
                        options.trace_path.c_str());
        if (!options.profile_path.empty() &&
            obs::Profiler::global().write_collapsed(
                options.profile_path))
            std::printf("profile written to %s\n",
                        options.profile_path.c_str());
        if (!options.report_path.empty() &&
            core::write_run_report(options.report_path, config, found))
            std::printf("run report written to %s\n",
                        options.report_path.c_str());
        if (options.metrics) {
            const auto snap = obs::Registry::global().snapshot();
            std::printf("metrics:\n");
            for (const auto &counter : snap.counters)
                std::printf("  %-24s %llu\n", counter.name.c_str(),
                            static_cast<unsigned long long>(
                                counter.value));
            for (const auto &gauge : snap.gauges)
                std::printf("  %-24s %lld (max %lld)\n",
                            gauge.name.c_str(),
                            static_cast<long long>(gauge.value),
                            static_cast<long long>(gauge.max));
            for (const auto &hist : snap.histograms) {
                std::uint64_t total = 0;
                for (std::uint64_t count : hist.counts)
                    total += count;
                std::printf("  %-24s %llu observations\n",
                            hist.name.c_str(),
                            static_cast<unsigned long long>(total));
            }
        }

        if (!options.dump_ranking.empty()) {
            write_ranking(options.dump_ranking, found);
            std::printf("ranking written to %s\n",
                        options.dump_ranking.c_str());
        }
        if (options.search_only)
            return 0;

        if (config.resilience.enabled)
            std::printf("resilience: %llu faults injected, %llu "
                        "retries, %d degraded candidates, %.1f s "
                        "simulated wait\n",
                        static_cast<unsigned long long>(
                            found.fault_counters.total()),
                        static_cast<unsigned long long>(
                            found.exec_counters.retries),
                        found.degraded_candidates,
                        found.simulated_wait_ms / 1000.0);

        qml::TrainConfig tc;
        tc.epochs = options.epochs;
        tc.threads = options.threads < 0 ? 0 : options.threads;
        tc.seed = options.seed + 1;
        tc.prune_dead_structure = options.prune_dead;
        const auto trained =
            qml::train_circuit(found.best_circuit, bench.train, tc);

        const auto ideal =
            qml::evaluate(found.best_circuit, trained.params, bench.test);
        const noise::NoisyDensitySimulator noisy(device);
        const auto hw = qml::evaluate(
            found.best_circuit, trained.params, bench.test,
            [&noisy](const circ::Circuit &c,
                     const std::vector<double> &p,
                     const std::vector<double> &x) {
                return noisy.run_distribution(c, p, x);
            });
        std::printf("accuracy: %.1f%% noiseless / %.1f%% noisy\n",
                    100 * ideal.accuracy, 100 * hw.accuracy);

        if (options.emit == "text") {
            std::printf("%s", circ::to_text(found.best_circuit).c_str());
        } else if (options.emit == "qasm") {
            std::vector<double> zeros(
                static_cast<std::size_t>(std::max(
                    1, found.best_circuit.num_data_features())),
                0.0);
            std::printf("%s", circ::to_qasm(found.best_circuit,
                                            trained.params, zeros)
                                  .c_str());
        } else if (!options.emit.empty()) {
            elv::fatal("--emit expects 'text' or 'qasm'");
        }
        return 0;
    } catch (const CancelledError &error) {
        std::fprintf(stderr, "search cancelled: %s\n", error.what());
        if (!options.checkpoint.empty())
            std::fprintf(stderr,
                         "completed stages are journaled in %s; "
                         "re-running resumes there\n",
                         options.checkpoint.c_str());
        if (!options.dist_state.empty())
            std::fprintf(stderr,
                         "completed shard stages are journaled in %s; "
                         "re-running resumes there\n",
                         options.dist_state.c_str());
        return 3;
    } catch (const UsageError &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        print_usage();
        return 1;
    } catch (const std::exception &error) {
        // e.g. every execution backend exhausted under --fault-rate.
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
