/**
 * @file
 * The Elivagar search daemon: a long-running service that accepts
 * search jobs over line-delimited JSON on TCP, runs them with per-job
 * isolation (seed, thread quota, deadline), journals every job so a
 * `kill -9` at any instant loses nothing, and degrades gracefully
 * under overload instead of falling over.
 *
 * Usage:
 *   elivagar_server [--host A] [--port N] [--data-dir DIR]
 *                   [--capacity N] [--workers N] [--threads N]
 *                   [--drain-sec F] [--metrics] [--metrics-port N]
 *                   [--allow-remote-shutdown]
 *
 * --metrics-port opens a second, HTTP port serving GET /metrics
 * (Prometheus text exposition of the registry, with histogram
 * quantiles and EWMA counter rates) and GET /healthz — scrapers never
 * touch the JSON job protocol. It implies --metrics.
 *
 * Protocol (one JSON object per line; see src/server/protocol.hpp):
 *   {"op":"submit","spec":{"benchmark":"moons","candidates":16}}
 *   {"op":"status","id":"job-1"}   {"op":"cancel","id":"job-1"}
 *   {"op":"result","id":"job-1"}   {"op":"watch","id":"job-1"}
 *   {"op":"health"}                {"op":"metrics"}
 *
 * Shutdown: SIGTERM/SIGINT stop accepting work and drain in-flight
 * jobs for up to --drain-sec; jobs that miss the budget are cancelled
 * in-process but stay resumable — the next start re-queues them and
 * their searches resume from their checkpoint journals.
 */
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include <memory>

#include "common/logging.hpp"
#include "server/http.hpp"
#include "server/server.hpp"
#include "server/tcp.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void
on_signal(int signum)
{
    g_signal = signum;
}

struct DaemonOptions
{
    elv::srv::ServerConfig core;
    elv::srv::TcpConfig tcp;
    double drain_sec = 10.0;
    /** Prometheus scrape port; <0 = no HTTP endpoint. */
    int metrics_port = -1;
};

void
print_usage()
{
    std::printf(
        "usage: elivagar_server [options]\n"
        "  --host A           bind address (default 127.0.0.1)\n"
        "  --port N           TCP port; 0 picks a free one (default "
        "7421)\n"
        "  --data-dir DIR     manifest/journals/results directory "
        "(default elivagar-jobs)\n"
        "  --capacity N       queue bound; beyond it submissions are\n"
        "                     rejected with retry-after (default 16)\n"
        "  --workers N        concurrent jobs (default 1)\n"
        "  --threads N        simulator thread budget shared by jobs\n"
        "                     (default: all hardware threads)\n"
        "  --drain-sec F      shutdown drain budget for in-flight jobs "
        "(default 10)\n"
        "  --metrics          enable the metrics registry/endpoint\n"
        "  --metrics-port N   serve GET /metrics (Prometheus text) and\n"
        "                     GET /healthz over HTTP on this port; 0\n"
        "                     picks a free one. Implies --metrics\n"
        "  --allow-remote-shutdown\n"
        "                     honour {\"op\":\"shutdown\"} requests\n");
}

bool
parse(int argc, char **argv, DaemonOptions &options)
{
    options.core.data_dir = "elivagar-jobs";
    options.tcp.port = 7421;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                elv::fatal("missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--host")
            options.tcp.host = value();
        else if (arg == "--port")
            options.tcp.port =
                static_cast<std::uint16_t>(std::atoi(value()));
        else if (arg == "--data-dir")
            options.core.data_dir = value();
        else if (arg == "--capacity")
            options.core.queue_capacity =
                static_cast<std::size_t>(std::atoi(value()));
        else if (arg == "--workers")
            options.core.workers = std::atoi(value());
        else if (arg == "--threads")
            options.core.thread_budget = std::atoi(value());
        else if (arg == "--drain-sec")
            options.drain_sec = std::atof(value());
        else if (arg == "--metrics")
            options.core.metrics = true;
        else if (arg == "--metrics-port") {
            options.metrics_port = std::atoi(value());
            options.core.metrics = true;
        }
        else if (arg == "--allow-remote-shutdown")
            options.tcp.allow_shutdown = true;
        else if (arg == "--help" || arg == "-h") {
            print_usage();
            return false;
        } else {
            elv::fatal("unknown option: " + arg);
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    DaemonOptions options;
    try {
        if (!parse(argc, argv, options))
            return 0;

        elv::srv::Server server(options.core);
        elv::srv::TcpServer tcp(server, options.tcp);
        std::unique_ptr<elv::srv::MetricsHttpServer> http;
        if (options.metrics_port >= 0) {
            elv::srv::HttpConfig hc;
            hc.host = options.tcp.host;
            hc.port = static_cast<std::uint16_t>(options.metrics_port);
            http = std::make_unique<elv::srv::MetricsHttpServer>(server,
                                                                 hc);
        }
        std::printf("elivagar_server listening on %s:%u (data in %s)\n",
                    options.tcp.host.c_str(),
                    static_cast<unsigned>(tcp.port()),
                    options.core.data_dir.c_str());
        if (http)
            std::printf("elivagar_server metrics on http://%s:%u"
                        "/metrics\n",
                        options.tcp.host.c_str(),
                        static_cast<unsigned>(http->port()));
        std::fflush(stdout);

        std::signal(SIGTERM, on_signal);
        std::signal(SIGINT, on_signal);

        // The accept loop owns the main thread; a watcher converts the
        // async signal flag into a cooperative stop.
        std::atomic<bool> watcher_exit{false};
        std::thread watcher([&] {
            while (!watcher_exit.load()) {
                if (g_signal != 0) {
                    tcp.stop();
                    return;
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(50));
            }
        });

        tcp.run();
        watcher_exit.store(true);
        watcher.join();

        double drain = options.drain_sec;
        if (tcp.shutdown_requested() && tcp.shutdown_drain_sec() > 0.0)
            drain = tcp.shutdown_drain_sec();
        std::printf("elivagar_server: draining (up to %.1f s)\n", drain);
        std::fflush(stdout);
        server.drain(drain);
        std::printf("elivagar_server: stopped\n");
        return 0;
    } catch (const elv::UsageError &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        print_usage();
        return 1;
    } catch (const std::exception &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
