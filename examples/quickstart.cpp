/**
 * @file
 * Quickstart: search for a QML circuit with Elivagar and train it.
 *
 * Walks the full public API surface in ~60 lines:
 *   1. generate a synthetic benchmark (Table 2 shapes),
 *   2. pick a device from the Table 3 catalog,
 *   3. run the 5-step Elivagar search,
 *   4. train the selected circuit with Adam + adjoint gradients,
 *   5. evaluate noiselessly and on the noisy device simulator.
 */
#include <cstdio>

#include "core/search.hpp"
#include "device/device.hpp"
#include "noise/noise_model.hpp"
#include "qml/synthetic.hpp"
#include "qml/trainer.hpp"

int
main()
{
    using namespace elv;

    // 1. A scaled-down "moons" benchmark (2 features, 2 classes).
    const qml::Benchmark bench = qml::make_benchmark("moons", 42, 0.3);
    std::printf("dataset: %s, %zu train / %zu test samples\n",
                bench.spec.name.c_str(), bench.train.size(),
                bench.test.size());

    // 2. A 7-qubit IBM Falcon device with Table 3 calibration.
    const dev::Device device = dev::make_device("ibm_lagos");
    std::printf("device: %s (%d qubits, %zu couplers)\n",
                device.name.c_str(), device.num_qubits(),
                device.topology.edges().size());

    // 3. Elivagar search: candidates are generated directly on the
    //    device topology, filtered by Clifford noise resilience, and
    //    ranked by representational capacity.
    core::ElivagarConfig config;
    config.num_candidates = 32;
    config.candidate.num_qubits = bench.spec.qubits;
    config.candidate.num_params = bench.spec.params;
    config.candidate.num_embeds = 6;
    config.candidate.num_meas = bench.spec.meas;
    config.candidate.num_features = bench.spec.dim;
    config.cnr.num_replicas = 8;
    config.repcap.samples_per_class = 8;
    config.repcap.param_inits = 8;
    config.seed = 7;

    const core::SearchResult found =
        core::elivagar_search(device, bench.train, config);
    std::printf("search: %zu candidates, %d survived CNR filtering, "
                "best score %.3f\n",
                found.candidates.size(), found.survivors,
                found.best_score);
    std::printf("        %llu CNR executions + %llu RepCap executions\n",
                static_cast<unsigned long long>(found.cnr_executions),
                static_cast<unsigned long long>(found.repcap_executions));
    std::printf("%s", found.best_circuit.to_string().c_str());

    // 4. Train the winner (noiseless simulator, adjoint gradients).
    qml::TrainConfig tc;
    tc.epochs = 40;
    tc.seed = 1;
    const qml::TrainResult trained =
        qml::train_circuit(found.best_circuit, bench.train, tc);
    std::printf("training: loss %.3f -> %.3f over %d epochs\n",
                trained.loss_history.front(),
                trained.loss_history.back(), tc.epochs);

    // 5. Evaluate noiselessly and under the device noise model.
    const auto ideal =
        qml::evaluate(found.best_circuit, trained.params, bench.test);
    const noise::NoisyDensitySimulator noisy(device);
    const auto hw = qml::evaluate(
        found.best_circuit, trained.params, bench.test,
        [&noisy](const circ::Circuit &c, const std::vector<double> &p,
                 const std::vector<double> &x) {
            return noisy.run_distribution(c, p, x);
        });
    std::printf("accuracy: %.1f%% noiseless, %.1f%% on noisy %s\n",
                100.0 * ideal.accuracy, 100.0 * hw.accuracy,
                device.name.c_str());
    return 0;
}
