/**
 * @file
 * End-to-end deployment pipeline with companion frameworks (Sec. 9.5):
 * Elivagar finds a circuit, QTN-VQC adds a trainable classical frontend
 * during joint training, and QuantumNAT calibrates post-measurement
 * normalization for noisy inference. Each stage's accuracy is reported
 * so the contribution of every component is visible.
 */
#include <cstdio>

#include "core/search.hpp"
#include "extensions/qtnvqc.hpp"
#include "extensions/quantumnat.hpp"
#include "noise/noise_model.hpp"
#include "qml/synthetic.hpp"
#include "qml/trainer.hpp"

int
main()
{
    using namespace elv;

    const qml::Benchmark bench = qml::make_benchmark("bank", 21, 0.2);
    const dev::Device device = dev::make_device("ibm_perth");
    std::printf("task: %s on %s\n\n", bench.spec.name.c_str(),
                device.name.c_str());

    // Stage 1: Elivagar search.
    core::ElivagarConfig config;
    config.num_candidates = 24;
    config.candidate.num_qubits = bench.spec.qubits;
    config.candidate.num_params = bench.spec.params;
    config.candidate.num_embeds = 6;
    config.candidate.num_meas = bench.spec.meas;
    config.candidate.num_features = bench.spec.dim;
    config.cnr.num_replicas = 8;
    config.repcap.samples_per_class = 8;
    config.repcap.param_inits = 8;
    config.seed = 5;
    const auto found = core::elivagar_search(device, bench.train, config);

    // Stage 2: plain training of the selected circuit.
    qml::TrainConfig tc;
    tc.epochs = 40;
    tc.seed = 2;
    const auto trained =
        qml::train_circuit(found.best_circuit, bench.train, tc);

    const noise::NoisyDensitySimulator noisy(device, 1.5);
    const qml::DistributionFn noisy_fn =
        [&noisy](const circ::Circuit &c, const std::vector<double> &p,
                 const std::vector<double> &x) {
            return noisy.run_distribution(c, p, x);
        };

    const double plain_ideal =
        qml::evaluate(found.best_circuit, trained.params, bench.test)
            .accuracy;
    const double plain_noisy =
        qml::evaluate(found.best_circuit, trained.params, bench.test,
                      noisy_fn)
            .accuracy;
    std::printf("Elivagar circuit:              %.1f%% noiseless, "
                "%.1f%% noisy\n",
                100 * plain_ideal, 100 * plain_noisy);

    // Stage 3: QuantumNAT normalization on top.
    ext::QuantumNat nat;
    nat.calibrate(found.best_circuit, trained.params, bench.train,
                  noisy_fn, qml::statevector_distribution());
    const double nat_noisy =
        nat.evaluate(found.best_circuit, trained.params, bench.test,
                     noisy_fn)
            .accuracy;
    std::printf("+ QuantumNAT normalization:    %.1f%% noisy\n",
                100 * nat_noisy);

    // Stage 4: QTN-VQC trainable frontend, trained jointly.
    ext::QtnVqcConfig qc;
    qc.epochs = 40;
    qc.seed = 3;
    ext::QtnVqc frontend(bench.spec.dim,
                         found.best_circuit.num_data_features(), qc);
    const auto joint_params =
        frontend.train_joint(found.best_circuit, bench.train);
    const double qtn_ideal =
        frontend
            .evaluate(found.best_circuit, joint_params, bench.test,
                      qml::statevector_distribution())
            .accuracy;
    const double qtn_noisy =
        frontend
            .evaluate(found.best_circuit, joint_params, bench.test,
                      noisy_fn)
            .accuracy;
    std::printf("+ QTN-VQC frontend:            %.1f%% noiseless, "
                "%.1f%% noisy\n",
                100 * qtn_ideal, 100 * qtn_noisy);

    std::printf("\nElivagar composes with training-side companions: the "
                "search makes no\nassumptions about preprocessing or "
                "noise-aware training (paper Sec. 9.5).\n");
    return 0;
}
