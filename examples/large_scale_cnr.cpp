/**
 * @file
 * CNR at scale: the whole point of Clifford noise resilience (paper
 * Sec. 5) is that it stays cheap where direct simulation is impossible.
 * This example generates device-aware candidates spanning 20-40 qubits
 * of the 127-qubit IBM Kyoto model and ranks them by CNR using the
 * stabilizer backend — a 40-qubit density-matrix simulation would need
 * ~2^80 complex numbers, while the tableau handles it in milliseconds.
 */
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/candidate_gen.hpp"
#include "core/cnr.hpp"
#include "device/device.hpp"

int
main()
{
    using namespace elv;

    const dev::Device device = dev::make_device("ibm_kyoto");
    std::printf("device: %s (%d qubits)\n\n", device.name.c_str(),
                device.num_qubits());

    Table table("Stabilizer-backend CNR for large device-aware circuits");
    table.set_header(
        {"qubits", "params", "2q gates", "CNR", "dense sim feasible?"});

    elv::Rng rng(2024);
    for (int qubits : {8, 16, 24, 32, 40}) {
        core::CandidateConfig config;
        config.num_qubits = qubits;
        config.num_params = 2 * qubits;
        config.num_embeds = 4;
        config.num_meas = qubits / 2;
        config.num_features = 4;
        const circ::Circuit c =
            core::generate_candidate(device, config, rng);

        core::CnrOptions options;
        options.backend = core::CnrBackend::Stabilizer;
        options.num_replicas = 8;
        options.shots = 1024;
        const auto result =
            core::clifford_noise_resilience(c, device, rng, options);

        table.add_row({std::to_string(qubits),
                       std::to_string(c.num_params()),
                       std::to_string(c.count_2q()),
                       Table::fmt(result.cnr, 3),
                       qubits <= 12 ? "yes (4^n dense)" : "no"});
    }
    table.print();
    std::printf("\nCNR keeps falling as circuits grow — exactly the "
                "early-rejection signal —\nwhile the tableau backend's "
                "cost stays polynomial in qubit count (Insight 3).\n");
    return 0;
}
