/**
 * @file
 * Evaluation worker of the distributed sharded search (see
 * src/dist). One process serves one coordinator conversation: it
 * receives a JobSpec, proves config identity with a fingerprint
 * handshake, then evaluates the CNR/RepCap stage requests it is sent
 * and streams (index, scores) records back. All protocol I/O is
 * line-delimited JSON; logs go to stderr so the protocol stream stays
 * clean.
 *
 * Modes:
 *   elivagar_worker                    serve stdin/stdout — the
 *                                      fork/exec transport used by
 *                                      `elivagar_cli search --workers N`
 *   elivagar_worker --serve [--host A] [--port N]
 *                                      accept TCP coordinators (one at
 *                                      a time) — the `--attach
 *                                      host:port` transport. Prints
 *                                      {"ev":"listening","port":N}
 *                                      once bound; port 0 picks a free
 *                                      one.
 */
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hpp"
#include "dist/worker.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void
on_signal(int signum)
{
    g_signal = signum;
}

void
print_usage()
{
    std::printf(
        "usage: elivagar_worker [options]\n"
        "  (no options)   serve one coordinator on stdin/stdout\n"
        "  --serve        accept TCP coordinators instead\n"
        "  --host A       bind address for --serve (default "
        "127.0.0.1)\n"
        "  --port N       bind port for --serve; 0 picks a free one "
        "(default 0)\n");
}

/** Read one '\n'-terminated line from `fd` (blocking, buffered). */
bool
read_line_fd(int fd, std::string &buffer, std::string &line)
{
    for (;;) {
        const std::size_t newline = buffer.find('\n');
        if (newline != std::string::npos) {
            line = buffer.substr(0, newline);
            buffer.erase(0, newline + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            return true;
        }
        char chunk[4096];
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR) {
                if (g_signal != 0)
                    return false;
                continue;
            }
            return false;
        }
        if (n == 0)
            return false;
        buffer.append(chunk, static_cast<std::size_t>(n));
    }
}

/** Write `line` + '\n' fully to `fd`; false when the peer is gone. */
bool
write_line_fd(int fd, const std::string &line)
{
    const std::string data = line + "\n";
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + sent, data.size() - sent);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

/** Serve one coordinator conversation over a file-descriptor pair. */
int
serve_fds(int in_fd, int out_fd)
{
    std::string buffer;
    elv::dist::WorkerIo io;
    io.read_line = [in_fd, &buffer](std::string &line) {
        return read_line_fd(in_fd, buffer, line);
    };
    io.write_line = [out_fd](const std::string &line) {
        return write_line_fd(out_fd, line);
    };
    return elv::dist::serve_worker(io);
}

/** --serve: bind, announce the port, accept coordinators in turn. */
int
serve_tcp(const std::string &host, int port)
{
    const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0)
        elv::fatal(std::string("socket: ") + std::strerror(errno));
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        elv::fatal("bad --host address: " + host);
    if (::bind(listen_fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        elv::fatal(std::string("bind: ") + std::strerror(errno));
    if (::listen(listen_fd, 4) != 0)
        elv::fatal(std::string("listen: ") + std::strerror(errno));
    socklen_t addr_len = sizeof(addr);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr *>(&addr),
                      &addr_len) != 0)
        elv::fatal(std::string("getsockname: ") +
                   std::strerror(errno));
    std::printf("{\"ev\":\"listening\",\"port\":%u}\n",
                static_cast<unsigned>(ntohs(addr.sin_port)));
    std::fflush(stdout);
    while (g_signal == 0) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            elv::warn(std::string("accept: ") + std::strerror(errno));
            break;
        }
        // One coordinator at a time: a worker is a single evaluation
        // engine, and queued coordinators would only time out slower.
        const int code = serve_fds(fd, fd);
        ::close(fd);
        if (code != 0)
            elv::warn("worker: conversation abandoned");
    }
    ::close(listen_fd);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool serve = false;
    std::string host = "127.0.0.1";
    int port = 0;
    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto value = [&]() -> const char * {
                if (i + 1 >= argc)
                    elv::fatal("missing value for " + arg);
                return argv[++i];
            };
            if (arg == "--serve")
                serve = true;
            else if (arg == "--host")
                host = value();
            else if (arg == "--port")
                port = std::atoi(value());
            else if (arg == "--help" || arg == "-h") {
                print_usage();
                return 0;
            } else {
                elv::fatal("unknown option: " + arg);
            }
        }
        if (port < 0 || port > 65535)
            elv::fatal("--port out of range");

        // The coordinator closing its end mid-write must surface as a
        // failed write, not kill the worker with SIGPIPE.
        std::signal(SIGPIPE, SIG_IGN);
        std::signal(SIGTERM, on_signal);
        std::signal(SIGINT, on_signal);

        if (serve)
            return serve_tcp(host, port);
        return serve_fds(STDIN_FILENO, STDOUT_FILENO);
    } catch (const elv::UsageError &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        print_usage();
        return 1;
    } catch (const std::exception &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
